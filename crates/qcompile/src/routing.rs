//! SABRE-style SWAP routing.
//!
//! Inserts SWAP gates so that every two-qubit gate acts on physically
//! coupled qubits. The heuristic follows SABRE (Li, Ding & Xie, ASPLOS'19)
//! in spirit: maintain the front layer of blocked gates, score candidate
//! SWAPs by the distance reduction over the front layer plus a decayed
//! lookahead window, commit the best, repeat.

use crate::coupling::DistanceMap;
use crate::error::CompileError;
use crate::layout::Layout;
use qcir::{Circuit, Gate, Instruction, Qubit};

/// Result of routing: a physical-wire circuit plus the initial and final
/// layouts (the final layout tells the caller which physical wire holds
/// each logical qubit at the end — needed to interpret measurements).
#[derive(Debug, Clone)]
pub struct Routed {
    /// Circuit over physical wires, containing only gates whose multi-qubit
    /// operands are coupled.
    pub circuit: Circuit,
    /// Layout at circuit start.
    pub initial_layout: Layout,
    /// Layout after all inserted SWAPs.
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swaps_inserted: usize,
}

/// Weight of the lookahead window in the SABRE score.
const LOOKAHEAD_WEIGHT: f64 = 0.5;
/// Size of the lookahead window (gates beyond the front layer).
const LOOKAHEAD_WINDOW: usize = 20;

/// Routes `circuit` (logical wires, gates of arity ≤ 2) onto the device
/// described by `distances`, starting from `layout`.
///
/// # Errors
///
/// Returns [`CompileError::UnsupportedGate`] if a gate of arity ≥ 3 is
/// present (run [`crate::decompose::decompose_to_cx`] first).
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qsim::Device;
/// use qcompile::{coupling::DistanceMap, layout::Layout, routing::route};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 2); // 0 and 2 are not coupled on Valencia
/// let dev = Device::fake_valencia();
/// let dm = DistanceMap::new(&dev)?;
/// let routed = route(&c, Layout::trivial(3, 5), &dm)?;
/// assert!(routed.swaps_inserted >= 1);
/// # Ok::<(), qcompile::CompileError>(())
/// ```
pub fn route(
    circuit: &Circuit,
    layout: Layout,
    distances: &DistanceMap,
) -> Result<Routed, CompileError> {
    for inst in circuit.iter() {
        if inst.gate().arity() > 2 {
            return Err(CompileError::UnsupportedGate(format!(
                "{} (decompose before routing)",
                inst.gate()
            )));
        }
    }

    let num_physical = layout.num_physical();
    let mut out = Circuit::with_name(num_physical, circuit.name());
    let initial_layout = layout.clone();
    let mut layout = layout;
    let mut swaps_inserted = 0usize;

    // Remaining gates in program order; `cursor` advances as gates commit.
    let gates: Vec<&Instruction> = circuit.iter().collect();
    let mut scheduled = vec![false; gates.len()];
    let mut cursor = 0usize;

    // Per-wire program order: gate i blocks gate j>i if they share a wire.
    // A gate is "ready" when all earlier gates on its wires are scheduled.
    let last_unscheduled_before = |idx: usize, scheduled: &[bool]| -> bool {
        let qs = gates[idx].qubits();
        for j in (0..idx).rev() {
            if scheduled[j] {
                continue;
            }
            if gates[j].qubits().iter().any(|q| qs.contains(q)) {
                return true;
            }
        }
        false
    };

    loop {
        // Commit every ready gate that is executable under the current
        // layout.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for idx in cursor..gates.len() {
                if scheduled[idx] || last_unscheduled_before(idx, &scheduled) {
                    continue;
                }
                let inst = gates[idx];
                let executable = match inst.qubits() {
                    [a, b] => {
                        let pa = layout.physical(a.raw());
                        let pb = layout.physical(b.raw());
                        distances.distance(pa, pb) == 1
                    }
                    _ => true, // single-qubit gates always execute
                };
                if executable {
                    let mapped: Vec<Qubit> = inst
                        .qubits()
                        .iter()
                        .map(|q| Qubit::new(layout.physical(q.raw())))
                        .collect();
                    out.push(
                        Instruction::new(inst.gate().clone(), mapped)
                            .expect("mapped instruction valid"),
                    )?;
                    scheduled[idx] = true;
                    progressed = true;
                }
            }
            while cursor < gates.len() && scheduled[cursor] {
                cursor += 1;
            }
        }

        if cursor >= gates.len() {
            break;
        }

        // Front layer: ready but blocked two-qubit gates.
        let front: Vec<usize> = (cursor..gates.len())
            .filter(|&idx| {
                !scheduled[idx]
                    && gates[idx].qubits().len() == 2
                    && !last_unscheduled_before(idx, &scheduled)
            })
            .collect();
        debug_assert!(!front.is_empty(), "stalled with no blocked 2q gates");

        // Lookahead window: next unscheduled 2q gates after the front.
        let lookahead: Vec<usize> = (cursor..gates.len())
            .filter(|&idx| !scheduled[idx] && gates[idx].qubits().len() == 2)
            .take(LOOKAHEAD_WINDOW)
            .collect();

        // Candidate SWAPs: physical edges touching a front-layer operand.
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        for &idx in &front {
            for q in gates[idx].qubits() {
                let p = layout.physical(q.raw());
                for other in 0..num_physical {
                    if other != p && distances.distance(p, other) == 1 {
                        let edge = (p.min(other), p.max(other));
                        if !candidates.contains(&edge) {
                            candidates.push(edge);
                        }
                    }
                }
            }
        }

        let score = |layout: &Layout| -> f64 {
            let front_cost: u32 = front
                .iter()
                .map(|&idx| {
                    let qs = gates[idx].qubits();
                    distances.distance(layout.physical(qs[0].raw()), layout.physical(qs[1].raw()))
                })
                .sum();
            let look_cost: u32 = lookahead
                .iter()
                .map(|&idx| {
                    let qs = gates[idx].qubits();
                    distances.distance(layout.physical(qs[0].raw()), layout.physical(qs[1].raw()))
                })
                .sum();
            front_cost as f64 + LOOKAHEAD_WEIGHT * look_cost as f64 / lookahead.len().max(1) as f64
        };

        let mut best: Option<(f64, (u32, u32))> = None;
        for &(a, b) in &candidates {
            let mut trial = layout.clone();
            trial.swap_physical(a, b);
            let s = score(&trial);
            if best.is_none_or(|(bs, _)| s < bs) {
                best = Some((s, (a, b)));
            }
        }
        let (_, (a, b)) = best.expect("candidate set nonempty");
        out.append(Gate::Swap, &[a, b])?;
        layout.swap_physical(a, b);
        swaps_inserted += 1;
    }

    Ok(Routed {
        circuit: out,
        initial_layout,
        final_layout: layout,
        swaps_inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::noise::NoiseModel;
    use qsim::Device;

    fn valencia_map() -> DistanceMap {
        DistanceMap::new(&Device::fake_valencia()).unwrap()
    }

    #[test]
    fn coupled_gates_route_without_swaps() {
        let mut c = Circuit::new(5);
        c.cx(0, 1).cx(1, 2).cx(1, 3).cx(3, 4);
        let routed = route(&c, Layout::trivial(5, 5), &valencia_map()).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.gate_count(), 4);
    }

    #[test]
    fn uncoupled_gate_inserts_swap() {
        let mut c = Circuit::new(5);
        c.cx(0, 4); // distance 3 on Valencia
        let routed = route(&c, Layout::trivial(5, 5), &valencia_map()).unwrap();
        assert!(routed.swaps_inserted >= 2);
        // Every 2q gate in the output must be on a coupled pair.
        let dm = valencia_map();
        for inst in routed.circuit.iter() {
            if inst.qubits().len() == 2 {
                let (a, b) = (inst.qubits()[0].raw(), inst.qubits()[1].raw());
                assert_eq!(dm.distance(a, b), 1, "gate {inst} not on an edge");
            }
        }
    }

    #[test]
    fn routing_preserves_functionality() {
        use qsim::Statevector;
        // GHZ-like circuit with a far pair.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3).cx(0, 1).x(2).cx(2, 3);
        let dev = Device::linear(4, NoiseModel::ideal());
        let dm = DistanceMap::new(&dev).unwrap();
        let routed = route(&c, Layout::trivial(4, 4), &dm).unwrap();

        // Logical result.
        let logical = Statevector::from_circuit(&c).unwrap();
        // Physical result: apply routed circuit, then undo the final
        // permutation by swapping wires back.
        let mut unpermute = routed.circuit.clone();
        let fl = routed.final_layout.clone();
        // Move each logical qubit back to its trivial position with swaps.
        let mut pos: Vec<u32> = (0..4).map(|l| fl.physical(l)).collect();
        for l in 0..4u32 {
            let cur = pos[l as usize];
            if cur != l {
                unpermute.swap(cur, l);
                // Track the displaced qubit.
                for p in pos.iter_mut() {
                    if *p == l {
                        *p = cur;
                        break;
                    }
                }
                pos[l as usize] = l;
            }
        }
        let physical = Statevector::from_circuit(&unpermute).unwrap();
        assert!(
            logical.approx_eq_up_to_phase(&physical, 1e-9),
            "routing changed the computation"
        );
    }

    #[test]
    fn rejects_unlowered_gates() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let err = route(&c, Layout::trivial(3, 5), &valencia_map()).unwrap_err();
        assert!(matches!(err, CompileError::UnsupportedGate(_)));
    }

    #[test]
    fn single_qubit_circuit_untouched() {
        let mut c = Circuit::new(3);
        c.h(0).x(1).rz(0.4, 2);
        let routed = route(&c, Layout::trivial(3, 5), &valencia_map()).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.gate_count(), 3);
        assert_eq!(routed.final_layout, routed.initial_layout);
    }

    #[test]
    fn dense_circuit_routes_on_line() {
        let mut c = Circuit::new(5);
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    c.cx(a, b);
                }
            }
        }
        let dev = Device::linear(5, NoiseModel::ideal());
        let dm = DistanceMap::new(&dev).unwrap();
        let routed = route(&c, Layout::trivial(5, 5), &dm).unwrap();
        for inst in routed.circuit.iter() {
            if inst.qubits().len() == 2 {
                let (a, b) = (inst.qubits()[0].raw(), inst.qubits()[1].raw());
                assert_eq!(dm.distance(a, b), 1);
            }
        }
    }
}
