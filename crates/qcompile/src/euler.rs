//! Euler-angle synthesis of single-qubit unitaries.
//!
//! Provides the two directions the basis translator and optimizer need:
//!
//! * [`matrix_to_u`] — extract `U(θ, φ, λ)` parameters from an arbitrary
//!   2×2 unitary (ZYZ decomposition), used to collapse runs of single-qubit
//!   gates into one gate.
//! * [`u_to_zsx`] — rewrite `U(θ, φ, λ)` into the IBM-native
//!   `RZ·SX·RZ·SX·RZ` sequence, used for final basis translation.

use qcir::Gate;
use qsim::matrix::{gate_matrix, Matrix};
use std::f64::consts::PI;

/// Extracts `(θ, φ, λ)` such that `U(θ, φ, λ)` equals `m` up to global
/// phase.
///
/// # Panics
///
/// Panics if `m` is not 2×2.
pub fn matrix_to_u(m: &Matrix) -> (f64, f64, f64) {
    assert_eq!(m.dim(), 2, "euler synthesis needs a single-qubit matrix");
    let u00 = m.get(0, 0);
    let u01 = m.get(0, 1);
    let u10 = m.get(1, 0);
    let u11 = m.get(1, 1);

    let c = u00.abs().clamp(0.0, 1.0);
    let theta = 2.0 * c.acos();

    if u00.abs() > 1e-12 && u10.abs() > 1e-12 {
        // Generic case: strip the global phase arg(u00).
        let g = u00.arg();
        let phi = u10.arg() - g;
        let lambda = (-u01).arg() - g;
        (theta, phi, lambda)
    } else if u00.abs() <= 1e-12 {
        // θ = π: only u01, u10 nonzero. U = [[0, -e^{iλ}],[e^{iφ}, 0]].
        // Only φ - λ... actually with θ=π: u10 = e^{iφ} sin(π/2) = e^{iφ},
        // u01 = -e^{iλ}. Global phase free; pin λ = 0.
        let phi = u10.arg() - (-u01).arg();
        (PI, phi, 0.0)
    } else {
        // θ = 0: diagonal. U = diag(1, e^{i(φ+λ)}) up to phase; pin φ = 0.
        let lambda = u11.arg() - u00.arg();
        (0.0, 0.0, lambda)
    }
}

/// Rewrites `U(θ, φ, λ)` as the native-basis sequence
/// `RZ(φ+π) · SX · RZ(θ+π) · SX · RZ(λ)` (applied right-to-left, i.e. the
/// returned vector is in application order starting with `RZ(λ)`).
///
/// Degenerate cases collapse: θ ≈ 0 emits a single RZ; θ ≈ ±π/2 emits the
/// one-SX form `RZ(φ+π/2)·SX·RZ(λ+π/2)` when applicable.
pub fn u_to_zsx(theta: f64, phi: f64, lambda: f64) -> Vec<Gate> {
    let tau = 2.0 * PI;
    let norm = |a: f64| {
        let mut x = a % tau;
        if x > PI {
            x -= tau;
        }
        if x < -PI {
            x += tau;
        }
        x
    };
    let theta_n = norm(theta);
    if theta_n.abs() < 1e-12 {
        let total = norm(phi + lambda);
        if total.abs() < 1e-12 {
            return Vec::new();
        }
        return vec![Gate::Rz(total)];
    }
    if (theta_n - PI / 2.0).abs() < 1e-12 {
        // U(π/2, φ, λ) = e^{iδ} RZ(φ+π/2)·SX·RZ(λ+π/2)... pin via identity.
        return vec![
            Gate::Rz(norm(lambda - PI / 2.0)),
            Gate::Sx,
            Gate::Rz(norm(phi + PI / 2.0)),
        ];
    }
    vec![
        Gate::Rz(norm(lambda)),
        Gate::Sx,
        Gate::Rz(norm(theta + PI)),
        Gate::Sx,
        Gate::Rz(norm(phi + 3.0 * PI)),
    ]
}

/// Convenience: synthesizes a matrix directly into native-basis gates.
pub fn matrix_to_zsx(m: &Matrix) -> Vec<Gate> {
    let (t, p, l) = matrix_to_u(m);
    u_to_zsx(t, p, l)
}

/// Multiplies a gate sequence (application order) into a single 2×2 matrix.
///
/// # Panics
///
/// Panics if any gate is not single-qubit.
pub fn sequence_matrix(gates: &[Gate]) -> Matrix {
    let mut acc = Matrix::identity(2);
    for g in gates {
        assert_eq!(g.arity(), 1, "sequence_matrix needs 1q gates");
        acc = gate_matrix(g).mul(&acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    fn check_roundtrip(g: &Gate) {
        let m = gate_matrix(g);
        let (t, p, l) = matrix_to_u(&m);
        let back = gate_matrix(&Gate::U(t, p, l));
        assert!(
            back.approx_eq_up_to_phase(&m, EPS),
            "matrix_to_u failed for {g}: got ({t}, {p}, {l})"
        );
    }

    #[test]
    fn matrix_to_u_roundtrips_standard_gates() {
        for g in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.7),
            Gate::Ry(-1.3),
            Gate::Rz(2.1),
            Gate::P(0.4),
            Gate::U(0.3, 1.1, -0.6),
        ] {
            check_roundtrip(&g);
        }
    }

    #[test]
    fn zsx_translation_is_exact_up_to_phase() {
        let cases = [
            (0.0, 0.0, 0.0),
            (PI, 0.0, PI),       // X
            (PI / 2.0, 0.0, PI), // H
            (0.3, 0.8, -0.5),
            (2.5, -1.0, 0.9),
            (PI / 2.0, -PI / 2.0, PI / 2.0), // SX itself
            (0.0, 0.0, 0.7),                 // pure phase
        ];
        for (t, p, l) in cases {
            let target = gate_matrix(&Gate::U(t, p, l));
            let seq = u_to_zsx(t, p, l);
            let got = sequence_matrix(&seq);
            assert!(
                got.approx_eq_up_to_phase(&target, EPS),
                "zsx wrong for U({t}, {p}, {l}); seq = {seq:?}"
            );
            assert!(seq.len() <= 5);
        }
    }

    #[test]
    fn zsx_identity_is_empty() {
        assert!(u_to_zsx(0.0, 0.0, 0.0).is_empty());
        assert!(u_to_zsx(0.0, 0.4, -0.4).is_empty());
    }

    #[test]
    fn zsx_diagonal_is_single_rz() {
        let seq = u_to_zsx(0.0, 0.2, 0.3);
        assert_eq!(seq.len(), 1);
        assert!(matches!(seq[0], Gate::Rz(_)));
    }

    #[test]
    fn zsx_uses_only_native_gates() {
        let seq = u_to_zsx(1.1, 0.5, -2.2);
        for g in &seq {
            assert!(
                matches!(g, Gate::Rz(_) | Gate::Sx),
                "non-native gate {g} in zsx output"
            );
        }
    }

    #[test]
    fn matrix_to_zsx_synthesizes_h() {
        let h = gate_matrix(&Gate::H);
        let seq = matrix_to_zsx(&h);
        assert!(sequence_matrix(&seq).approx_eq_up_to_phase(&h, EPS));
    }

    #[test]
    fn random_angle_sweep() {
        // Deterministic pseudo-random sweep across the parameter space.
        let mut x = 0.123_f64;
        for _ in 0..50 {
            x = (x * 9301.0 + 49297.0) % 233280.0;
            let t = (x / 233280.0) * 2.0 * PI;
            x = (x * 9301.0 + 49297.0) % 233280.0;
            let p = (x / 233280.0) * 2.0 * PI - PI;
            x = (x * 9301.0 + 49297.0) % 233280.0;
            let l = (x / 233280.0) * 2.0 * PI - PI;
            let target = gate_matrix(&Gate::U(t, p, l));
            let got = sequence_matrix(&u_to_zsx(t, p, l));
            assert!(
                got.approx_eq_up_to_phase(&target, 1e-8),
                "sweep failed at U({t}, {p}, {l})"
            );
        }
    }
}
