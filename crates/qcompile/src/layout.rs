//! Initial layout selection: mapping logical circuit qubits onto physical
//! device qubits.

use crate::coupling::DistanceMap;
use crate::error::CompileError;
use qcir::Circuit;
use qsim::Device;

/// A bijective (partial, on the logical side) map from logical qubits to
/// physical qubits.
///
/// # Example
///
/// ```
/// use qcompile::layout::Layout;
///
/// let layout = Layout::trivial(3, 5);
/// assert_eq!(layout.physical(2), 2);
/// assert_eq!(layout.logical(2), Some(2));
/// assert_eq!(layout.logical(4), None); // unused physical qubit
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// to_physical[logical] = physical.
    to_physical: Vec<u32>,
    num_physical: u32,
}

impl Layout {
    /// Identity layout: logical `i` → physical `i`.
    ///
    /// # Panics
    ///
    /// Panics if the device is smaller than the circuit.
    pub fn trivial(num_logical: u32, num_physical: u32) -> Self {
        assert!(num_logical <= num_physical, "device too small");
        Layout {
            to_physical: (0..num_logical).collect(),
            num_physical,
        }
    }

    /// Builds a layout from an explicit logical→physical table.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::CircuitTooLarge`] if the table is larger than
    /// the device or [`CompileError::UnsupportedGate`]-free validation
    /// failures as `Circuit` errors for duplicates/out-of-range entries.
    pub fn from_table(to_physical: Vec<u32>, num_physical: u32) -> Result<Self, CompileError> {
        if to_physical.len() as u32 > num_physical {
            return Err(CompileError::CircuitTooLarge {
                required: to_physical.len() as u32,
                available: num_physical,
            });
        }
        let mut seen = vec![false; num_physical as usize];
        for &p in &to_physical {
            if p >= num_physical {
                return Err(CompileError::Circuit(qcir::CircuitError::QubitOutOfRange {
                    qubit: p,
                    num_qubits: num_physical,
                }));
            }
            if seen[p as usize] {
                return Err(CompileError::Circuit(qcir::CircuitError::DuplicateQubit {
                    qubit: p,
                }));
            }
            seen[p as usize] = true;
        }
        Ok(Layout {
            to_physical,
            num_physical,
        })
    }

    /// Number of logical qubits covered.
    pub fn num_logical(&self) -> u32 {
        self.to_physical.len() as u32
    }

    /// Number of physical qubits on the device.
    pub fn num_physical(&self) -> u32 {
        self.num_physical
    }

    /// Physical qubit hosting `logical`.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of range.
    pub fn physical(&self, logical: u32) -> u32 {
        self.to_physical[logical as usize]
    }

    /// Logical qubit mapped to `physical`, if any.
    pub fn logical(&self, physical: u32) -> Option<u32> {
        self.to_physical
            .iter()
            .position(|&p| p == physical)
            .map(|i| i as u32)
    }

    /// The raw logical→physical table.
    pub fn table(&self) -> &[u32] {
        &self.to_physical
    }

    /// Swaps the logical qubits held by two physical qubits (the routing
    /// primitive: a SWAP gate updates the layout, not the data).
    pub fn swap_physical(&mut self, a: u32, b: u32) {
        for p in &mut self.to_physical {
            if *p == a {
                *p = b;
            } else if *p == b {
                *p = a;
            }
        }
    }
}

/// Chooses an initial layout for `circuit` on `device` by greedy
/// interaction matching: the most-interacting logical qubit goes to the
/// highest-degree physical qubit, then each next logical qubit goes to the
/// free physical qubit minimizing summed distance to its already-placed
/// interaction partners.
///
/// # Errors
///
/// Returns [`CompileError::CircuitTooLarge`] if the device is smaller than
/// the circuit.
pub fn greedy_layout(
    circuit: &Circuit,
    device: &Device,
    distances: &DistanceMap,
) -> Result<Layout, CompileError> {
    let nl = circuit.num_qubits() as usize;
    let np = device.num_qubits() as usize;
    if nl > np {
        return Err(CompileError::CircuitTooLarge {
            required: nl as u32,
            available: np as u32,
        });
    }

    // Interaction counts between logical pairs.
    let mut weight = vec![0u32; nl * nl];
    for inst in circuit.iter() {
        let qs = inst.qubits();
        for i in 0..qs.len() {
            for j in i + 1..qs.len() {
                let (a, b) = (qs[i].index(), qs[j].index());
                weight[a * nl + b] += 1;
                weight[b * nl + a] += 1;
            }
        }
    }
    let mut order: Vec<usize> = (0..nl).collect();
    let degree = |l: usize| -> u32 { (0..nl).map(|m| weight[l * nl + m]).sum() };
    order.sort_by_key(|&l| std::cmp::Reverse(degree(l)));

    let adjacency = device.adjacency();
    let mut placed: Vec<Option<u32>> = vec![None; nl];
    let mut used = vec![false; np];

    for &l in &order {
        // Candidate score: summed distance to placed partners (weighted).
        let mut best: Option<(u64, u32)> = None;
        for p in 0..np as u32 {
            if used[p as usize] {
                continue;
            }
            let mut score: u64 = 0;
            let mut has_partner = false;
            for m in 0..nl {
                if weight[l * nl + m] > 0 {
                    if let Some(pm) = placed[m] {
                        has_partner = true;
                        score += weight[l * nl + m] as u64 * distances.distance(p, pm) as u64;
                    }
                }
            }
            if !has_partner {
                // No placed partners: prefer high-degree physical qubits.
                score = u64::MAX - adjacency[p as usize].len() as u64;
            }
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, p));
            }
        }
        let (_, p) = best.expect("device has enough qubits");
        placed[l] = Some(p);
        used[p as usize] = true;
    }

    let table: Vec<u32> = placed.into_iter().map(|p| p.expect("all placed")).collect();
    Layout::from_table(table, np as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::noise::NoiseModel;

    #[test]
    fn trivial_layout_is_identity() {
        let l = Layout::trivial(3, 5);
        for i in 0..3 {
            assert_eq!(l.physical(i), i);
        }
        assert_eq!(l.num_logical(), 3);
        assert_eq!(l.num_physical(), 5);
    }

    #[test]
    fn from_table_validates() {
        assert!(Layout::from_table(vec![0, 1, 2], 3).is_ok());
        assert!(Layout::from_table(vec![0, 0], 3).is_err()); // duplicate
        assert!(Layout::from_table(vec![0, 9], 3).is_err()); // out of range
        assert!(Layout::from_table(vec![0, 1, 2, 3], 3).is_err()); // too large
    }

    #[test]
    fn swap_physical_updates_mapping() {
        let mut l = Layout::trivial(3, 3);
        l.swap_physical(0, 2);
        assert_eq!(l.physical(0), 2);
        assert_eq!(l.physical(2), 0);
        assert_eq!(l.physical(1), 1);
        assert_eq!(l.logical(2), Some(0));
    }

    #[test]
    fn greedy_layout_keeps_hot_pair_adjacent() {
        // Circuit where qubits 0 and 3 interact heavily.
        let mut c = Circuit::new(4);
        for _ in 0..10 {
            c.cx(0, 3);
        }
        c.cx(1, 2);
        let dev = Device::fake_valencia();
        let dm = DistanceMap::new(&dev).unwrap();
        let layout = greedy_layout(&c, &dev, &dm).unwrap();
        let d = dm.distance(layout.physical(0), layout.physical(3));
        assert_eq!(d, 1, "hot pair not adjacent: layout {:?}", layout.table());
    }

    #[test]
    fn greedy_layout_rejects_oversized() {
        let c = Circuit::new(9);
        let dev = Device::fake_valencia();
        let dm = DistanceMap::new(&dev).unwrap();
        assert!(matches!(
            greedy_layout(&c, &dev, &dm),
            Err(CompileError::CircuitTooLarge { .. })
        ));
    }

    #[test]
    fn greedy_layout_is_injective() {
        let mut c = Circuit::new(5);
        c.cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4).cx(0, 4);
        let dev = Device::linear(8, NoiseModel::ideal());
        let dm = DistanceMap::new(&dev).unwrap();
        let layout = greedy_layout(&c, &dev, &dm).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for l in 0..5 {
            assert!(seen.insert(layout.physical(l)));
        }
    }
}
