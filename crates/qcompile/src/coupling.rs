//! Coupling-map utilities: all-pairs shortest paths over the device graph.

use crate::error::CompileError;
use qsim::Device;

/// Precomputed all-pairs shortest-path distances and next-hop table for a
/// device coupling map.
///
/// # Example
///
/// ```
/// use qsim::Device;
/// use qcompile::coupling::DistanceMap;
///
/// let map = DistanceMap::new(&Device::fake_valencia())?;
/// assert_eq!(map.distance(0, 1), 1);
/// assert_eq!(map.distance(0, 4), 3); // 0-1-3-4
/// # Ok::<(), qcompile::CompileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DistanceMap {
    n: usize,
    dist: Vec<u32>,
    /// next[a*n+b] = neighbour of `a` on a shortest path to `b`.
    next: Vec<u32>,
}

const UNREACHABLE: u32 = u32::MAX;

impl DistanceMap {
    /// Builds the distance map via BFS from every qubit.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Unroutable`] if the coupling graph is
    /// disconnected.
    pub fn new(device: &Device) -> Result<Self, CompileError> {
        let n = device.num_qubits() as usize;
        let adj = device.adjacency();
        let mut dist = vec![UNREACHABLE; n * n];
        let mut next = vec![UNREACHABLE; n * n];

        for start in 0..n {
            dist[start * n + start] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(start as u32);
            while let Some(u) = queue.pop_front() {
                let du = dist[start * n + u as usize];
                for &v in &adj[u as usize] {
                    if dist[start * n + v as usize] == UNREACHABLE {
                        dist[start * n + v as usize] = du + 1;
                        // First hop from start towards v: if u is start, the
                        // hop is v itself, else inherit u's first hop.
                        next[start * n + v as usize] = if u as usize == start {
                            v
                        } else {
                            next[start * n + u as usize]
                        };
                        queue.push_back(v);
                    }
                }
            }
        }

        // Verify connectivity.
        for a in 0..n {
            for b in 0..n {
                if dist[a * n + b] == UNREACHABLE {
                    return Err(CompileError::Unroutable {
                        a: a as u32,
                        b: b as u32,
                    });
                }
            }
        }

        Ok(DistanceMap { n, dist, next })
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hop distance between physical qubits `a` and `b`.
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        self.dist[a as usize * self.n + b as usize]
    }

    /// The shortest path from `a` to `b`, inclusive of both endpoints.
    pub fn path(&self, a: u32, b: u32) -> Vec<u32> {
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            cur = self.next[cur as usize * self.n + b as usize];
            path.push(cur);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::noise::NoiseModel;

    #[test]
    fn valencia_distances() {
        let map = DistanceMap::new(&Device::fake_valencia()).unwrap();
        assert_eq!(map.distance(0, 0), 0);
        assert_eq!(map.distance(0, 1), 1);
        assert_eq!(map.distance(0, 2), 2);
        assert_eq!(map.distance(0, 3), 2);
        assert_eq!(map.distance(0, 4), 3);
        assert_eq!(map.distance(2, 4), 3);
    }

    #[test]
    fn distances_symmetric() {
        let map = DistanceMap::new(&Device::fake_valencia()).unwrap();
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(map.distance(a, b), map.distance(b, a));
            }
        }
    }

    #[test]
    fn paths_are_shortest() {
        let map = DistanceMap::new(&Device::fake_valencia()).unwrap();
        let p = map.path(0, 4);
        assert_eq!(p, vec![0, 1, 3, 4]);
        assert_eq!(p.len() as u32, map.distance(0, 4) + 1);
        assert_eq!(map.path(2, 2), vec![2]);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let dev = Device::new(
            "split",
            4,
            vec![(0, 1), (2, 3)],
            vec!["cx"],
            NoiseModel::ideal(),
        );
        assert!(matches!(
            DistanceMap::new(&dev),
            Err(CompileError::Unroutable { .. })
        ));
    }

    #[test]
    fn linear_device_distance_is_index_gap() {
        let dev = Device::linear(8, NoiseModel::ideal());
        let map = DistanceMap::new(&dev).unwrap();
        assert_eq!(map.distance(0, 7), 7);
        assert_eq!(map.distance(3, 5), 2);
    }
}
