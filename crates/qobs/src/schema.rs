//! Self-validating schema for qobs JSONL traces, mirroring
//! `bench::schema` for the `BENCH_*.json` emitters: the contract a
//! trace must satisfy lives next to the code that writes it, and CI
//! replays every emitted trace through [`validate_trace`].
//!
//! A valid trace is a sequence of flat JSON object lines where:
//!
//! - the first line is a `meta` line carrying `schema_version` (equal to
//!   [`crate::SCHEMA_VERSION`]) and a recognised `level`;
//! - every line's `type` is one of `meta`, `span`, `counter`,
//!   `histogram`, `event`;
//! - `span` lines carry `name`, a unique `id`, `thread`, `start_us`,
//!   `elapsed_us`, and (for nested spans) a `parent` referencing another
//!   span id in the trace;
//! - `counter` lines carry `name` and `value`;
//! - `histogram` lines carry `name`, `count`, `sum_us`, `max_us`;
//! - `event` lines carry `name` and `thread`.

use crate::json::{self, ParsedObj};

/// Per-kind line counts for a validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total line count.
    pub lines: usize,
    /// `meta` lines.
    pub meta: usize,
    /// `span` lines.
    pub spans: usize,
    /// `counter` lines.
    pub counters: usize,
    /// `histogram` lines.
    pub histograms: usize,
    /// `event` lines.
    pub events: usize,
}

/// Validate a full JSONL trace. Returns per-kind line counts on
/// success and a message naming the first offending line on failure.
///
/// ```
/// let trace = "\
/// {\"type\":\"meta\",\"schema_version\":1,\"level\":\"full\"}\n\
/// {\"type\":\"counter\",\"name\":\"qsim.kernel.diag1\",\"value\":4}\n";
/// let summary = qobs::schema::validate_trace(trace).unwrap();
/// assert_eq!(summary.counters, 1);
/// assert!(qobs::schema::validate_trace("{\"type\":\"counter\"}\n").is_err());
/// ```
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut span_ids: Vec<u64> = Vec::new();
    let mut parents: Vec<(usize, u64)> = Vec::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: blank line in trace"));
        }
        let obj = json::parse_line(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let kind = obj
            .get_str("type")
            .ok_or_else(|| format!("line {lineno}: missing string \"type\" field"))?;
        if summary.lines == 0 && kind != "meta" {
            return Err(format!(
                "line 1: trace must start with a meta line, found type {kind:?}"
            ));
        }
        summary.lines += 1;
        match kind {
            "meta" => {
                validate_meta(&obj).map_err(|e| format!("line {lineno}: {e}"))?;
                summary.meta += 1;
            }
            "span" => {
                let id = validate_span(&obj).map_err(|e| format!("line {lineno}: {e}"))?;
                if span_ids.contains(&id) {
                    return Err(format!("line {lineno}: duplicate span id {id}"));
                }
                span_ids.push(id);
                if let Some(parent) = obj.get_u64("parent") {
                    parents.push((lineno, parent));
                }
                summary.spans += 1;
            }
            "counter" => {
                require_name(&obj).map_err(|e| format!("line {lineno}: {e}"))?;
                require_u64(&obj, "value").map_err(|e| format!("line {lineno}: {e}"))?;
                summary.counters += 1;
            }
            "histogram" => {
                require_name(&obj).map_err(|e| format!("line {lineno}: {e}"))?;
                for key in ["count", "sum_us", "max_us"] {
                    require_u64(&obj, key).map_err(|e| format!("line {lineno}: {e}"))?;
                }
                summary.histograms += 1;
            }
            "event" => {
                require_name(&obj).map_err(|e| format!("line {lineno}: {e}"))?;
                require_u64(&obj, "thread").map_err(|e| format!("line {lineno}: {e}"))?;
                summary.events += 1;
            }
            other => {
                return Err(format!("line {lineno}: unknown line type {other:?}"));
            }
        }
    }

    if summary.lines == 0 {
        return Err("empty trace (no lines)".to_string());
    }
    for (lineno, parent) in parents {
        if !span_ids.contains(&parent) {
            return Err(format!(
                "line {lineno}: span parent {parent} does not match any span id in the trace"
            ));
        }
    }
    Ok(summary)
}

fn validate_meta(obj: &ParsedObj) -> Result<(), String> {
    let version = require_u64(obj, "schema_version")?;
    if version != crate::SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {}",
            crate::SCHEMA_VERSION
        ));
    }
    let level = obj
        .get_str("level")
        .ok_or_else(|| "meta line missing string \"level\"".to_string())?;
    if !matches!(level, "off" | "counters" | "spans" | "full") {
        return Err(format!("meta level {level:?} is not a recognised level"));
    }
    // The CLI records the resolved worker count; when present it must be
    // a positive integer so determinism investigations can trust it.
    if obj.get("qsim_workers").is_some() {
        let workers = require_u64(obj, "qsim_workers")?;
        if workers == 0 {
            return Err("meta qsim_workers must be >= 1".to_string());
        }
    }
    Ok(())
}

fn validate_span(obj: &ParsedObj) -> Result<u64, String> {
    require_name(obj)?;
    let id = require_u64(obj, "id")?;
    if id == 0 {
        return Err("span id must be >= 1".to_string());
    }
    require_u64(obj, "thread")?;
    require_u64(obj, "start_us")?;
    require_u64(obj, "elapsed_us")?;
    Ok(id)
}

fn require_name(obj: &ParsedObj) -> Result<(), String> {
    match obj.get_str("name") {
        Some(name) if !name.is_empty() => Ok(()),
        Some(_) => Err("empty \"name\" field".to_string()),
        None => Err("missing string \"name\" field".to_string()),
    }
}

fn require_u64(obj: &ParsedObj, key: &str) -> Result<u64, String> {
    obj.get_u64(key)
        .ok_or_else(|| format!("missing or non-integer \"{key}\" field"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const META: &str = r#"{"type":"meta","schema_version":1,"level":"full","qsim_workers":4}"#;

    fn trace(lines: &[&str]) -> String {
        let mut out = String::new();
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    #[test]
    fn accepts_full_example() {
        let t = trace(&[
            META,
            r#"{"type":"span","name":"verify.tier","id":2,"parent":1,"thread":0,"start_us":10,"elapsed_us":5,"tier":"zx","outcome":"decided"}"#,
            r#"{"type":"span","name":"verify.check","id":1,"thread":0,"start_us":0,"elapsed_us":20}"#,
            r#"{"type":"event","name":"qsim.fusion.decision","thread":1,"accepted":true}"#,
            r#"{"type":"counter","name":"qsim.kernel.mat1","value":12}"#,
            r#"{"type":"histogram","name":"qverify.tier.zx.elapsed_us","count":1,"sum_us":5,"max_us":5}"#,
        ]);
        let s = validate_trace(&t).unwrap();
        assert_eq!(
            s,
            TraceSummary {
                lines: 6,
                meta: 1,
                spans: 2,
                counters: 1,
                histograms: 1,
                events: 1,
            }
        );
    }

    #[test]
    fn rejects_missing_meta_head() {
        let t = trace(&[r#"{"type":"counter","name":"x","value":1}"#]);
        assert!(validate_trace(&t).unwrap_err().contains("meta"));
    }

    #[test]
    fn rejects_empty_trace() {
        assert!(validate_trace("").is_err());
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let t = trace(&[r#"{"type":"meta","schema_version":2,"level":"full"}"#]);
        assert!(validate_trace(&t).unwrap_err().contains("schema_version"));
    }

    #[test]
    fn rejects_bad_level_and_zero_workers() {
        let t = trace(&[r#"{"type":"meta","schema_version":1,"level":"loud"}"#]);
        assert!(validate_trace(&t).unwrap_err().contains("level"));
        let t = trace(&[r#"{"type":"meta","schema_version":1,"level":"full","qsim_workers":0}"#]);
        assert!(validate_trace(&t).unwrap_err().contains("qsim_workers"));
    }

    #[test]
    fn rejects_dangling_parent_and_duplicate_id() {
        let t = trace(&[
            META,
            r#"{"type":"span","name":"a","id":5,"parent":9,"thread":0,"start_us":0,"elapsed_us":1}"#,
        ]);
        assert!(validate_trace(&t).unwrap_err().contains("parent"));
        let t = trace(&[
            META,
            r#"{"type":"span","name":"a","id":5,"thread":0,"start_us":0,"elapsed_us":1}"#,
            r#"{"type":"span","name":"b","id":5,"thread":0,"start_us":0,"elapsed_us":1}"#,
        ]);
        assert!(validate_trace(&t)
            .unwrap_err()
            .contains("duplicate span id"));
    }

    #[test]
    fn rejects_malformed_lines() {
        let t = trace(&[META, r#"{"type":"counter","name":"x","value":1.5}"#]);
        assert!(validate_trace(&t).unwrap_err().contains("value"));
        let t = trace(&[META, r#"{"type":"mystery","name":"x"}"#]);
        assert!(validate_trace(&t)
            .unwrap_err()
            .contains("unknown line type"));
        let t = trace(&[META, "not json"]);
        assert!(validate_trace(&t).is_err());
        let t = format!("{META}\n\n");
        assert!(validate_trace(&t).unwrap_err().contains("blank"));
    }
}
