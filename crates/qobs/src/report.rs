//! Trace summarization: turns a validated JSONL trace into the
//! per-stage/per-tier text table behind `tetrislock report`.

use crate::json;
use crate::schema;
use std::collections::BTreeMap;

#[derive(Default)]
struct SpanAgg {
    calls: u64,
    total_us: u64,
    max_us: u64,
    decided: bool,
}

/// Validate `text` as a qobs trace and render a human-readable summary:
/// run metadata, per-stage span aggregates (spans carrying a `tier`
/// attribute are broken out per tier, with the deciding tier marked),
/// counters, histograms, and event counts.
///
/// Returns the schema validation error unchanged when the trace is
/// invalid, so callers get validation for free.
pub fn summarize(text: &str) -> Result<String, String> {
    let summary = schema::validate_trace(text)?;

    let mut meta_lines: Vec<String> = Vec::new();
    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    let mut events: BTreeMap<String, u64> = BTreeMap::new();

    for line in text.lines() {
        // validate_trace already proved every line parses.
        let obj = json::parse_line(line).map_err(|e| e.to_string())?;
        match obj.get_str("type") {
            Some("meta") => {
                let mut parts: Vec<String> = Vec::new();
                for (key, value) in obj.fields() {
                    if key == "type" {
                        continue;
                    }
                    let rendered = match value {
                        json::Value::Str(s) => s.clone(),
                        json::Value::Num(n) => format!("{n}"),
                        json::Value::Bool(b) => format!("{b}"),
                        json::Value::Null => "null".to_string(),
                    };
                    parts.push(format!("{key}={rendered}"));
                }
                meta_lines.push(parts.join(" "));
            }
            Some("span") => {
                let name = obj.get_str("name").unwrap_or("?");
                let key = match obj.get_str("tier") {
                    Some(tier) => format!("{name}[{tier}]"),
                    None => name.to_string(),
                };
                let agg = spans.entry(key).or_default();
                let elapsed = obj.get_u64("elapsed_us").unwrap_or(0);
                agg.calls += 1;
                agg.total_us += elapsed;
                agg.max_us = agg.max_us.max(elapsed);
                if obj.get_str("outcome") == Some("decided") {
                    agg.decided = true;
                }
            }
            Some("counter") => {
                let name = obj.get_str("name").unwrap_or("?").to_string();
                let value = obj.get_u64("value").unwrap_or(0);
                // Repeated flushes re-emit cumulative totals; keep the last.
                counters.insert(name, value);
            }
            Some("histogram") => {
                let name = obj.get_str("name").unwrap_or("?").to_string();
                histograms.insert(
                    name,
                    (
                        obj.get_u64("count").unwrap_or(0),
                        obj.get_u64("sum_us").unwrap_or(0),
                        obj.get_u64("max_us").unwrap_or(0),
                    ),
                );
            }
            Some("event") => {
                let name = obj.get_str("name").unwrap_or("?").to_string();
                *events.entry(name).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} lines ({} spans, {} counters, {} histograms, {} events)\n",
        summary.lines, summary.spans, summary.counters, summary.histograms, summary.events
    ));
    for meta in &meta_lines {
        out.push_str(&format!("meta: {meta}\n"));
    }

    if !spans.is_empty() {
        // Widest key first so the table aligns.
        let mut rows: Vec<(&String, &SpanAgg)> = spans.iter().collect();
        rows.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0).max(5);
        out.push_str(&format!(
            "\nstages (by total time)\n  {:<width$}  {:>6}  {:>12}  {:>12}  {:>12}\n",
            "stage", "calls", "total_ms", "mean_ms", "max_ms"
        ));
        for (key, agg) in rows {
            let mean_us = agg.total_us as f64 / agg.calls.max(1) as f64;
            out.push_str(&format!(
                "  {:<width$}  {:>6}  {:>12.3}  {:>12.3}  {:>12.3}{}\n",
                key,
                agg.calls,
                agg.total_us as f64 / 1e3,
                mean_us / 1e3,
                agg.max_us as f64 / 1e3,
                if agg.decided { "  <- decided" } else { "" }
            ));
        }
    }

    if !counters.is_empty() {
        let width = counters.keys().map(String::len).max().unwrap_or(0).max(7);
        out.push_str(&format!(
            "\ncounters\n  {:<width$}  {:>12}\n",
            "counter", "value"
        ));
        for (name, value) in &counters {
            out.push_str(&format!("  {name:<width$}  {value:>12}\n"));
        }
    }

    if !histograms.is_empty() {
        let width = histograms.keys().map(String::len).max().unwrap_or(0).max(9);
        out.push_str(&format!(
            "\nhistograms\n  {:<width$}  {:>8}  {:>12}  {:>12}\n",
            "histogram", "count", "mean_ms", "max_ms"
        ));
        for (name, (count, sum_us, max_us)) in &histograms {
            let mean_us = *sum_us as f64 / (*count).max(1) as f64;
            out.push_str(&format!(
                "  {:<width$}  {:>8}  {:>12.3}  {:>12.3}\n",
                name,
                count,
                mean_us / 1e3,
                *max_us as f64 / 1e3,
            ));
        }
    }

    if !events.is_empty() {
        let width = events.keys().map(String::len).max().unwrap_or(0).max(5);
        out.push_str(&format!(
            "\nevents\n  {:<width$}  {:>8}\n",
            "event", "count"
        ));
        for (name, count) in &events {
            out.push_str(&format!("  {name:<width$}  {count:>8}\n"));
        }
    }

    Ok(out)
}

/// Renders a serve-daemon `status.json` (one flat JSON object of type
/// `serve_status`; schema in `docs/observability.md`) as a
/// human-readable health card for `tetrislock report --serve`.
///
/// Returns an error for non-JSON input or an object of the wrong type,
/// so pointing `--serve` at a trace file fails loudly instead of
/// rendering garbage.
pub fn render_serve_status(text: &str) -> Result<String, String> {
    let line = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| "empty status file".to_string())?;
    let obj = json::parse_line(line)?;
    match obj.get_str("type") {
        Some("serve_status") => {}
        Some(other) => return Err(format!("not a serve status file (type={other})")),
        None => return Err("not a serve status file (no type field)".to_string()),
    }
    let num = |key: &str| obj.get_u64(key).unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "serve status (schema v{})\n",
        num("schema_version")
    ));
    out.push_str(&format!(
        "  state: {}\n",
        if obj.get_bool("draining") == Some(true) {
            "draining"
        } else {
            "running"
        }
    ));
    out.push_str(&format!("  workers:     {:>8}\n", num("workers")));
    out.push_str(&format!("  queue depth: {:>8}\n", num("queue_depth")));
    out.push_str(&format!("  in flight:   {:>8}\n", num("in_flight")));
    out.push_str(&format!("  admitted:    {:>8}\n", num("admitted")));
    out.push_str(&format!("  completed:   {:>8}\n", num("completed")));
    out.push_str(&format!("  quarantined: {:>8}\n", num("quarantined")));
    out.push_str(&format!("  cancelled:   {:>8}\n", num("cancelled")));
    out.push_str(&format!("  retries:     {:>8}\n", num("retries")));
    out.push_str(&format!("  polls:       {:>8}\n", num("polls")));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_tier_breakout_and_deciding_marker() {
        let trace = "\
{\"type\":\"meta\",\"schema_version\":1,\"level\":\"full\",\"command\":\"verify\",\"qsim_workers\":4}\n\
{\"type\":\"span\",\"name\":\"verify.tier\",\"id\":2,\"parent\":1,\"thread\":0,\"start_us\":0,\"elapsed_us\":50,\"tier\":\"tableau\",\"outcome\":\"fell_through\"}\n\
{\"type\":\"span\",\"name\":\"verify.tier\",\"id\":3,\"parent\":1,\"thread\":0,\"start_us\":60,\"elapsed_us\":400,\"tier\":\"zx\",\"outcome\":\"decided\"}\n\
{\"type\":\"span\",\"name\":\"verify.check\",\"id\":1,\"thread\":0,\"start_us\":0,\"elapsed_us\":500}\n\
{\"type\":\"counter\",\"name\":\"qsim.kernel.mat1\",\"value\":9}\n\
{\"type\":\"histogram\",\"name\":\"qverify.tier.zx.elapsed_us\",\"count\":1,\"sum_us\":400,\"max_us\":400}\n\
{\"type\":\"event\",\"name\":\"qsim.fusion.decision\",\"thread\":0}\n";
        let report = summarize(trace).unwrap();
        assert!(report.contains("verify.tier[zx]"), "{report}");
        assert!(report.contains("verify.tier[tableau]"), "{report}");
        assert!(report.contains("<- decided"), "{report}");
        assert!(report.contains("qsim.kernel.mat1"), "{report}");
        assert!(report.contains("command=verify"), "{report}");
        assert!(report.contains("qsim_workers=4"), "{report}");
        assert!(report.contains("qsim.fusion.decision"), "{report}");
        // The deciding marker must sit on the zx row, not the tableau one.
        let zx_row = report
            .lines()
            .find(|l| l.contains("verify.tier[zx]"))
            .unwrap();
        assert!(zx_row.contains("<- decided"), "{report}");
        let tableau_row = report
            .lines()
            .find(|l| l.contains("verify.tier[tableau]"))
            .unwrap();
        assert!(!tableau_row.contains("<- decided"), "{report}");
    }

    #[test]
    fn propagates_validation_errors() {
        assert!(summarize("").is_err());
        assert!(summarize("{\"type\":\"span\"}\n").is_err());
    }

    #[test]
    fn renders_serve_status_card() {
        let status = "{\"type\":\"serve_status\",\"schema_version\":1,\"workers\":4,\
\"queue_depth\":2,\"in_flight\":1,\"admitted\":9,\"completed\":6,\"quarantined\":1,\
\"cancelled\":1,\"retries\":3,\"polls\":120,\"draining\":false}\n";
        let card = render_serve_status(status).unwrap();
        assert!(card.contains("state: running"), "{card}");
        assert!(card.contains("queue depth"), "{card}");
        assert!(
            card.lines()
                .any(|l| l.contains("completed") && l.ends_with('6')),
            "{card}"
        );

        let draining = status.replace("\"draining\":false", "\"draining\":true");
        assert!(render_serve_status(&draining)
            .unwrap()
            .contains("state: draining"));
    }

    #[test]
    fn serve_status_rejects_wrong_input() {
        assert!(render_serve_status("").is_err());
        assert!(render_serve_status("not json").is_err());
        assert!(render_serve_status("{\"type\":\"meta\",\"schema_version\":1}").is_err());
    }

    #[test]
    fn keeps_last_counter_value_across_flushes() {
        let trace = "\
{\"type\":\"meta\",\"schema_version\":1,\"level\":\"counters\"}\n\
{\"type\":\"counter\",\"name\":\"c\",\"value\":3}\n\
{\"type\":\"counter\",\"name\":\"c\",\"value\":8}\n";
        let report = summarize(trace).unwrap();
        let row = report.lines().find(|l| l.trim().starts_with("c ")).unwrap();
        assert!(row.trim().ends_with('8'), "{report}");
    }
}
