//! Trace summarization: turns a validated JSONL trace into the
//! per-stage/per-tier text table behind `tetrislock report`.

use crate::json;
use crate::schema;
use std::collections::BTreeMap;

#[derive(Default)]
struct SpanAgg {
    calls: u64,
    total_us: u64,
    max_us: u64,
    decided: bool,
}

/// Validate `text` as a qobs trace and render a human-readable summary:
/// run metadata, per-stage span aggregates (spans carrying a `tier`
/// attribute are broken out per tier, with the deciding tier marked),
/// counters, histograms, and event counts.
///
/// Returns the schema validation error unchanged when the trace is
/// invalid, so callers get validation for free.
pub fn summarize(text: &str) -> Result<String, String> {
    let summary = schema::validate_trace(text)?;

    let mut meta_lines: Vec<String> = Vec::new();
    let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut histograms: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    let mut events: BTreeMap<String, u64> = BTreeMap::new();

    for line in text.lines() {
        // validate_trace already proved every line parses.
        let obj = json::parse_line(line).map_err(|e| e.to_string())?;
        match obj.get_str("type") {
            Some("meta") => {
                let mut parts: Vec<String> = Vec::new();
                for (key, value) in obj.fields() {
                    if key == "type" {
                        continue;
                    }
                    let rendered = match value {
                        json::Value::Str(s) => s.clone(),
                        json::Value::Num(n) => format!("{n}"),
                        json::Value::Bool(b) => format!("{b}"),
                        json::Value::Null => "null".to_string(),
                    };
                    parts.push(format!("{key}={rendered}"));
                }
                meta_lines.push(parts.join(" "));
            }
            Some("span") => {
                let name = obj.get_str("name").unwrap_or("?");
                let key = match obj.get_str("tier") {
                    Some(tier) => format!("{name}[{tier}]"),
                    None => name.to_string(),
                };
                let agg = spans.entry(key).or_default();
                let elapsed = obj.get_u64("elapsed_us").unwrap_or(0);
                agg.calls += 1;
                agg.total_us += elapsed;
                agg.max_us = agg.max_us.max(elapsed);
                if obj.get_str("outcome") == Some("decided") {
                    agg.decided = true;
                }
            }
            Some("counter") => {
                let name = obj.get_str("name").unwrap_or("?").to_string();
                let value = obj.get_u64("value").unwrap_or(0);
                // Repeated flushes re-emit cumulative totals; keep the last.
                counters.insert(name, value);
            }
            Some("histogram") => {
                let name = obj.get_str("name").unwrap_or("?").to_string();
                histograms.insert(
                    name,
                    (
                        obj.get_u64("count").unwrap_or(0),
                        obj.get_u64("sum_us").unwrap_or(0),
                        obj.get_u64("max_us").unwrap_or(0),
                    ),
                );
            }
            Some("event") => {
                let name = obj.get_str("name").unwrap_or("?").to_string();
                *events.entry(name).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} lines ({} spans, {} counters, {} histograms, {} events)\n",
        summary.lines, summary.spans, summary.counters, summary.histograms, summary.events
    ));
    for meta in &meta_lines {
        out.push_str(&format!("meta: {meta}\n"));
    }

    if !spans.is_empty() {
        // Widest key first so the table aligns.
        let mut rows: Vec<(&String, &SpanAgg)> = spans.iter().collect();
        rows.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0).max(5);
        out.push_str(&format!(
            "\nstages (by total time)\n  {:<width$}  {:>6}  {:>12}  {:>12}  {:>12}\n",
            "stage", "calls", "total_ms", "mean_ms", "max_ms"
        ));
        for (key, agg) in rows {
            let mean_us = agg.total_us as f64 / agg.calls.max(1) as f64;
            out.push_str(&format!(
                "  {:<width$}  {:>6}  {:>12.3}  {:>12.3}  {:>12.3}{}\n",
                key,
                agg.calls,
                agg.total_us as f64 / 1e3,
                mean_us / 1e3,
                agg.max_us as f64 / 1e3,
                if agg.decided { "  <- decided" } else { "" }
            ));
        }
    }

    if !counters.is_empty() {
        let width = counters.keys().map(String::len).max().unwrap_or(0).max(7);
        out.push_str(&format!(
            "\ncounters\n  {:<width$}  {:>12}\n",
            "counter", "value"
        ));
        for (name, value) in &counters {
            out.push_str(&format!("  {name:<width$}  {value:>12}\n"));
        }
    }

    if !histograms.is_empty() {
        let width = histograms.keys().map(String::len).max().unwrap_or(0).max(9);
        out.push_str(&format!(
            "\nhistograms\n  {:<width$}  {:>8}  {:>12}  {:>12}\n",
            "histogram", "count", "mean_ms", "max_ms"
        ));
        for (name, (count, sum_us, max_us)) in &histograms {
            let mean_us = *sum_us as f64 / (*count).max(1) as f64;
            out.push_str(&format!(
                "  {:<width$}  {:>8}  {:>12.3}  {:>12.3}\n",
                name,
                count,
                mean_us / 1e3,
                *max_us as f64 / 1e3,
            ));
        }
    }

    if !events.is_empty() {
        let width = events.keys().map(String::len).max().unwrap_or(0).max(5);
        out.push_str(&format!(
            "\nevents\n  {:<width$}  {:>8}\n",
            "event", "count"
        ));
        for (name, count) in &events {
            out.push_str(&format!("  {name:<width$}  {count:>8}\n"));
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_tier_breakout_and_deciding_marker() {
        let trace = "\
{\"type\":\"meta\",\"schema_version\":1,\"level\":\"full\",\"command\":\"verify\",\"qsim_workers\":4}\n\
{\"type\":\"span\",\"name\":\"verify.tier\",\"id\":2,\"parent\":1,\"thread\":0,\"start_us\":0,\"elapsed_us\":50,\"tier\":\"tableau\",\"outcome\":\"fell_through\"}\n\
{\"type\":\"span\",\"name\":\"verify.tier\",\"id\":3,\"parent\":1,\"thread\":0,\"start_us\":60,\"elapsed_us\":400,\"tier\":\"zx\",\"outcome\":\"decided\"}\n\
{\"type\":\"span\",\"name\":\"verify.check\",\"id\":1,\"thread\":0,\"start_us\":0,\"elapsed_us\":500}\n\
{\"type\":\"counter\",\"name\":\"qsim.kernel.mat1\",\"value\":9}\n\
{\"type\":\"histogram\",\"name\":\"qverify.tier.zx.elapsed_us\",\"count\":1,\"sum_us\":400,\"max_us\":400}\n\
{\"type\":\"event\",\"name\":\"qsim.fusion.decision\",\"thread\":0}\n";
        let report = summarize(trace).unwrap();
        assert!(report.contains("verify.tier[zx]"), "{report}");
        assert!(report.contains("verify.tier[tableau]"), "{report}");
        assert!(report.contains("<- decided"), "{report}");
        assert!(report.contains("qsim.kernel.mat1"), "{report}");
        assert!(report.contains("command=verify"), "{report}");
        assert!(report.contains("qsim_workers=4"), "{report}");
        assert!(report.contains("qsim.fusion.decision"), "{report}");
        // The deciding marker must sit on the zx row, not the tableau one.
        let zx_row = report
            .lines()
            .find(|l| l.contains("verify.tier[zx]"))
            .unwrap();
        assert!(zx_row.contains("<- decided"), "{report}");
        let tableau_row = report
            .lines()
            .find(|l| l.contains("verify.tier[tableau]"))
            .unwrap();
        assert!(!tableau_row.contains("<- decided"), "{report}");
    }

    #[test]
    fn propagates_validation_errors() {
        assert!(summarize("").is_err());
        assert!(summarize("{\"type\":\"span\"}\n").is_err());
    }

    #[test]
    fn keeps_last_counter_value_across_flushes() {
        let trace = "\
{\"type\":\"meta\",\"schema_version\":1,\"level\":\"counters\"}\n\
{\"type\":\"counter\",\"name\":\"c\",\"value\":3}\n\
{\"type\":\"counter\",\"name\":\"c\",\"value\":8}\n";
        let report = summarize(trace).unwrap();
        let row = report.lines().find(|l| l.trim().starts_with("c ")).unwrap();
        assert!(row.trim().ends_with('8'), "{report}");
    }
}
