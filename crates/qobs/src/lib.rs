//! Zero-dependency structured tracing and metrics for the TetrisLock
//! workspace.
//!
//! `qobs` is the observability substrate every other crate instruments
//! against: it provides **spans** (monotonic wall-clock timing with
//! parent/child nesting), **counters**, and **histograms**, recorded
//! through a thread-safe global subscriber, plus a JSON-lines trace
//! emitter and the tooling to validate ([`schema`]) and summarize
//! ([`report`]) the traces it writes.
//!
//! # Levels
//!
//! Recording is gated by a global [`Level`], initialised lazily from the
//! `QOBS` environment variable (`off`, `counters`, `spans`, `full`;
//! anything else — including unset — means `off`):
//!
//! - `off` — every instrumentation call is a single relaxed atomic load.
//! - `counters` — counters and histograms accumulate; nothing is emitted
//!   until [`flush`].
//! - `spans` — additionally, span guards emit one JSON line per span.
//! - `full` — additionally, fine-grained [`event`]s (per-decision
//!   diagnostics) are emitted.
//!
//! # Trace output
//!
//! Nothing is written anywhere until a sink is installed with
//! [`set_trace_file`] or [`set_trace_memory`]. The emitted format is
//! JSON lines: one flat (non-nested) JSON object per line, with a
//! `"type"` field of `meta`, `span`, `counter`, `histogram`, or `event`.
//! See `docs/observability.md` for the full event model and [`schema`]
//! for the machine-checked contract.
//!
//! # Example
//!
//! ```
//! qobs::reset_metrics();
//! qobs::set_level(qobs::Level::Full);
//! let sink = qobs::set_trace_memory();
//! qobs::run_meta(&[("tool", qobs::AttrValue::from("doctest"))]);
//! static OPS: qobs::Counter = qobs::Counter::new("doctest.ops");
//! {
//!     let _span = qobs::span("doctest.work").attr("size", 3u64);
//!     OPS.incr();
//! }
//! qobs::flush();
//! let trace = sink.contents();
//! qobs::schema::validate_trace(&trace).unwrap();
//! qobs::clear_trace();
//! qobs::set_level(qobs::Level::Off);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod json;
pub mod report;
pub mod schema;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Version stamp written into every `meta` line; bump when the line
/// format changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Level
// ---------------------------------------------------------------------------

/// How much the global subscriber records. Ordered: each level includes
/// everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Record nothing; instrumentation cost is one relaxed atomic load.
    Off = 0,
    /// Accumulate counters and histograms (emitted on [`flush`]).
    Counters = 1,
    /// Additionally emit one JSON line per span.
    Spans = 2,
    /// Additionally emit fine-grained per-decision [`event`]s.
    Full = 3,
}

impl Level {
    /// Parse a `QOBS` environment value. Unrecognised values (and the
    /// empty string) mean [`Level::Off`]; matching is case-insensitive.
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "counters" => Level::Counters,
            "spans" => Level::Spans,
            "full" => Level::Full,
            _ => Level::Off,
        }
    }

    /// The canonical lower-case name (`"off"`, `"counters"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Counters => "counters",
            Level::Spans => "spans",
            Level::Full => "full",
        }
    }

    fn from_u8(raw: u8) -> Level {
        match raw {
            1 => Level::Counters,
            2 => Level::Spans,
            3 => Level::Full,
            _ => Level::Off,
        }
    }
}

const LEVEL_UNINIT: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// The current recording level. Lazily initialised from the `QOBS`
/// environment variable on first query unless [`set_level`] ran first.
#[inline]
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw == LEVEL_UNINIT {
        init_level_from_env()
    } else {
        Level::from_u8(raw)
    }
}

#[cold]
fn init_level_from_env() -> Level {
    let parsed = std::env::var("QOBS")
        .map(|v| Level::parse(&v))
        .unwrap_or(Level::Off);
    // A concurrent set_level (or another env init) may have won; keep
    // whatever is installed by the time we re-read.
    let _ = LEVEL.compare_exchange(
        LEVEL_UNINIT,
        parsed as u8,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Set the recording level programmatically, overriding `QOBS`.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Raise the recording level to at least `min` (never lowers it).
pub fn raise_level(min: Level) {
    if level() < min {
        set_level(min);
    }
}

/// True when the current level is at least `min`. This is the hot-path
/// guard: with `QOBS=off` it is a single relaxed load and compare.
#[inline]
pub fn enabled(min: Level) -> bool {
    level() >= min
}

// ---------------------------------------------------------------------------
// Attribute values
// ---------------------------------------------------------------------------

/// A span/event attribute value. Constructed via `From` impls so call
/// sites can pass strings, integers, floats, and bools directly.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute (JSON string).
    Str(String),
    /// An unsigned integer attribute (JSON number).
    UInt(u64),
    /// A float attribute (JSON number; non-finite values emit as 0).
    Float(f64),
    /// A boolean attribute (JSON `true`/`false`).
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::UInt(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::UInt(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::UInt(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

/// A named monotonic counter. Declare as a `static`; the first increment
/// at `counters` level or above registers it with the global subscriber
/// so [`flush`] and [`counter_snapshot`] can see it.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Create a counter. `const` so it can live in a `static`.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n`. No-op below [`Level::Counters`].
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled(Level::Counters) {
            return;
        }
        self.register();
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one. No-op below [`Level::Counters`].
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            COUNTERS.lock().unwrap().push(self);
        }
    }
}

/// Snapshot of all registered counters as `(name, value)`, sorted by
/// name for deterministic output.
pub fn counter_snapshot() -> Vec<(&'static str, u64)> {
    let mut out: Vec<_> = COUNTERS
        .lock()
        .unwrap()
        .iter()
        .map(|c| (c.name, c.get()))
        .collect();
    out.sort_unstable_by_key(|&(name, _)| name);
    out
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// A named duration histogram tracking count, sum, and max in
/// microseconds. Declare as a `static`, like [`Counter`].
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
    registered: AtomicBool,
}

/// One histogram's aggregate state, as returned by
/// [`histogram_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramStats {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub sum_us: u64,
    /// Largest single sample, microseconds.
    pub max_us: u64,
}

impl Histogram {
    /// Create a histogram. `const` so it can live in a `static`.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Record one duration in microseconds. No-op below
    /// [`Level::Counters`].
    #[inline]
    pub fn record_us(&'static self, us: u64) {
        if !enabled(Level::Counters) {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            HISTOGRAMS.lock().unwrap().push(self);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The current aggregate state.
    pub fn stats(&self) -> HistogramStats {
        HistogramStats {
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of all registered histograms as `(name, stats)`, sorted by
/// name.
pub fn histogram_snapshot() -> Vec<(&'static str, HistogramStats)> {
    let mut out: Vec<_> = HISTOGRAMS
        .lock()
        .unwrap()
        .iter()
        .map(|h| (h.name, h.stats()))
        .collect();
    out.sort_unstable_by_key(|&(name, _)| name);
    out
}

/// Zero every registered counter and histogram and drop all recorded
/// timing samples. For tests and repeated in-process runs; does not
/// touch the level or the trace sink.
pub fn reset_metrics() {
    for c in COUNTERS.lock().unwrap().iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in HISTOGRAMS.lock().unwrap().iter() {
        h.count.store(0, Ordering::Relaxed);
        h.sum_us.store(0, Ordering::Relaxed);
        h.max_us.store(0, Ordering::Relaxed);
    }
    SAMPLES.lock().unwrap().clear();
}

// ---------------------------------------------------------------------------
// Trace sink
// ---------------------------------------------------------------------------

enum SinkKind {
    File(BufWriter<File>),
    Memory(Arc<Mutex<String>>),
}

static SINK: Mutex<Option<SinkKind>> = Mutex::new(None);

/// Handle to an in-memory trace buffer installed by
/// [`set_trace_memory`]; lets tests read back what was emitted.
pub struct MemorySink(Arc<Mutex<String>>);

impl MemorySink {
    /// Everything emitted so far.
    pub fn contents(&self) -> String {
        self.0.lock().unwrap().clone()
    }

    /// Discard everything emitted so far.
    pub fn clear(&self) {
        self.0.lock().unwrap().clear();
    }
}

/// Direct trace output to `path` (truncating it). Replaces any
/// previously installed sink.
pub fn set_trace_file(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().unwrap() = Some(SinkKind::File(BufWriter::new(file)));
    Ok(())
}

/// Direct trace output to an in-memory buffer and return a handle to
/// it. Replaces any previously installed sink.
pub fn set_trace_memory() -> MemorySink {
    let buf = Arc::new(Mutex::new(String::new()));
    *SINK.lock().unwrap() = Some(SinkKind::Memory(Arc::clone(&buf)));
    MemorySink(buf)
}

/// Remove the trace sink (flushing a file sink first). Subsequent
/// emissions are dropped.
pub fn clear_trace() {
    let mut guard = SINK.lock().unwrap();
    if let Some(SinkKind::File(w)) = guard.as_mut() {
        let _ = w.flush();
    }
    *guard = None;
}

fn emit_line(line: &str) {
    let mut guard = SINK.lock().unwrap();
    match guard.as_mut() {
        Some(SinkKind::File(w)) => {
            let _ = writeln!(w, "{line}");
        }
        Some(SinkKind::Memory(buf)) => {
            let mut buf = buf.lock().unwrap();
            buf.push_str(line);
            buf.push('\n');
        }
        None => {}
    }
}

fn sink_present() -> bool {
    SINK.lock().unwrap().is_some()
}

/// Emit one `counter` line per registered counter and one `histogram`
/// line per registered histogram (at `counters` level or above), then
/// flush a file sink to disk. Call once at the end of a run; calling it
/// repeatedly re-emits the cumulative totals.
pub fn flush() {
    if enabled(Level::Counters) && sink_present() {
        for (name, value) in counter_snapshot() {
            let mut o = json::Obj::new("counter");
            o.field_str("name", name);
            o.field_u64("value", value);
            emit_line(&o.finish());
        }
        for (name, stats) in histogram_snapshot() {
            let mut o = json::Obj::new("histogram");
            o.field_str("name", name);
            o.field_u64("count", stats.count);
            o.field_u64("sum_us", stats.sum_us);
            o.field_u64("max_us", stats.max_us);
            emit_line(&o.finish());
        }
    }
    let mut guard = SINK.lock().unwrap();
    if let Some(SinkKind::File(w)) = guard.as_mut() {
        let _ = w.flush();
    }
}

/// Emit the run-metadata line that heads a trace: `schema_version`, the
/// active level, and any caller-provided attributes (the CLI records
/// the command, argv, and the resolved qsim worker count here). No-op
/// below [`Level::Counters`].
pub fn run_meta(attrs: &[(&'static str, AttrValue)]) {
    if !enabled(Level::Counters) {
        return;
    }
    let mut o = json::Obj::new("meta");
    o.field_u64("schema_version", SCHEMA_VERSION);
    o.field_str("level", level().name());
    for (key, value) in attrs {
        o.field_attr(key, value);
    }
    emit_line(&o.finish());
}

/// Emit a fine-grained diagnostic event (one JSON line). No-op below
/// [`Level::Full`]; also requires an installed sink.
pub fn event(name: &'static str, attrs: &[(&'static str, AttrValue)]) {
    if !enabled(Level::Full) || !sink_present() {
        return;
    }
    let mut o = json::Obj::new("event");
    o.field_str("name", name);
    o.field_u64("thread", thread_index());
    for (key, value) in attrs {
        o.field_attr(key, value);
    }
    emit_line(&o.finish());
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_IDX: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_IDX: u64 = NEXT_THREAD_IDX.fetch_add(1, Ordering::Relaxed);
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn thread_index() -> u64 {
    THREAD_IDX.with(|idx| *idx)
}

struct SpanInner {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_us: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII guard for a timed span. Created by [`span`] / [`span_at`];
/// emits one `span` JSON line on drop (when recording is active and a
/// sink is installed). Nesting is tracked per thread: a span created
/// while another is open on the same thread records it as its parent.
#[must_use = "a span measures the scope it is alive in; binding it to _ drops it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attach an attribute (builder style). No-op on a disabled span.
    pub fn attr(mut self, key: &'static str, value: impl Into<AttrValue>) -> Span {
        if let Some(inner) = self.inner.as_mut() {
            inner.attrs.push((key, value.into()));
        }
        self
    }

    /// True when this span is actually recording (level was high enough
    /// at creation time).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

/// Open a span at the default [`Level::Spans`] gate. Returns an inert
/// guard (zero further cost) below that level.
pub fn span(name: &'static str) -> Span {
    span_at(Level::Spans, name)
}

/// Open a span gated at an explicit level — e.g. `span_at(Level::Full,
/// ...)` for high-frequency spans that would swamp a `spans`-level
/// trace.
pub fn span_at(min: Level, name: &'static str) -> Span {
    if !enabled(min) {
        return Span { inner: None };
    }
    let start = Instant::now();
    let start_us = start.duration_since(epoch()).as_micros() as u64;
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    Span {
        inner: Some(SpanInner {
            name,
            id,
            parent,
            start,
            start_us,
            attrs: Vec::new(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed_us = inner.start.elapsed().as_micros() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Usually the top of the stack; tolerate out-of-order drops.
            if let Some(pos) = stack.iter().rposition(|&id| id == inner.id) {
                stack.remove(pos);
            }
        });
        if !sink_present() {
            return;
        }
        let mut o = json::Obj::new("span");
        o.field_str("name", inner.name);
        o.field_u64("id", inner.id);
        if let Some(parent) = inner.parent {
            o.field_u64("parent", parent);
        }
        o.field_u64("thread", thread_index());
        o.field_u64("start_us", inner.start_us);
        o.field_u64("elapsed_us", elapsed_us);
        for (key, value) in &inner.attrs {
            o.field_attr(key, value);
        }
        emit_line(&o.finish());
    }
}

// ---------------------------------------------------------------------------
// Timing samples (perf emitters)
// ---------------------------------------------------------------------------

static SAMPLES: Mutex<BTreeMap<String, Vec<f64>>> = Mutex::new(BTreeMap::new());

/// Record one wall-clock sample (milliseconds) under `name` in the
/// global sample store. Unlike counters, samples are *not* level-gated:
/// they are explicit measurements taken by the perf emitters, not
/// ambient instrumentation.
pub fn record_sample_ms(name: &str, ms: f64) {
    SAMPLES
        .lock()
        .unwrap()
        .entry(name.to_string())
        .or_default()
        .push(ms);
}

/// All samples recorded under `name`, in recording order.
pub fn sample_values_ms(name: &str) -> Vec<f64> {
    SAMPLES
        .lock()
        .unwrap()
        .get(name)
        .cloned()
        .unwrap_or_default()
}

/// Median of the samples recorded under `name` (`None` when there are
/// none).
pub fn sample_median_ms(name: &str) -> Option<f64> {
    let mut values = sample_values_ms(name);
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Some(values[values.len() / 2])
}

/// Run `f` `warmup` times unmeasured, then `reps` more times recording
/// each duration as a sample under `name`, and return the median in
/// milliseconds. This is the shared timing loop behind the `perfdump`
/// emitters, so `BENCH_*.json` numbers and live qobs samples can never
/// disagree.
pub fn time_median_ms<F: FnMut()>(name: &str, warmup: usize, reps: usize, mut f: F) -> f64 {
    for _ in 0..warmup {
        f();
    }
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        f();
        record_sample_ms(name, start.elapsed().as_secs_f64() * 1e3);
    }
    sample_median_ms(name).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The level/sink/registry state is process-global; tests that touch
    // it serialize on this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn level_parse_names() {
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("COUNTERS"), Level::Counters);
        assert_eq!(Level::parse(" spans "), Level::Spans);
        assert_eq!(Level::parse("Full"), Level::Full);
        assert_eq!(Level::parse("bogus"), Level::Off);
        assert_eq!(Level::parse(""), Level::Off);
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Off < Level::Counters);
        assert!(Level::Counters < Level::Spans);
        assert!(Level::Spans < Level::Full);
    }

    #[test]
    fn counters_gate_on_level() {
        let _guard = lock();
        static C: Counter = Counter::new("test.lib.gated");
        set_level(Level::Off);
        let before = C.get();
        C.incr();
        assert_eq!(C.get(), before, "off level must not record");
        set_level(Level::Counters);
        C.add(3);
        assert_eq!(C.get(), before + 3);
        set_level(Level::Off);
    }

    #[test]
    fn histogram_tracks_count_sum_max() {
        let _guard = lock();
        static H: Histogram = Histogram::new("test.lib.hist");
        set_level(Level::Counters);
        reset_metrics();
        H.record_us(10);
        H.record_us(30);
        H.record_us(20);
        let stats = H.stats();
        assert_eq!(stats.count, 3);
        assert_eq!(stats.sum_us, 60);
        assert_eq!(stats.max_us, 30);
        set_level(Level::Off);
    }

    #[test]
    fn span_nesting_and_emission() {
        let _guard = lock();
        set_level(Level::Spans);
        let sink = set_trace_memory();
        {
            let _outer = span("test.outer").attr("k", "v");
            let _inner = span("test.inner");
        }
        clear_trace();
        set_level(Level::Off);
        let trace = sink.contents();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 2, "two span lines, got: {trace}");
        // Inner drops (and emits) first.
        let inner = json::parse_line(lines[0]).unwrap();
        let outer = json::parse_line(lines[1]).unwrap();
        assert_eq!(inner.get_str("name"), Some("test.inner"));
        assert_eq!(outer.get_str("name"), Some("test.outer"));
        assert_eq!(inner.get_u64("parent"), outer.get_u64("id"));
        assert_eq!(outer.get_str("k"), Some("v"));
        assert!(outer.get_u64("parent").is_none());
    }

    #[test]
    fn events_require_full_level() {
        let _guard = lock();
        let sink = set_trace_memory();
        set_level(Level::Spans);
        event("test.ev", &[("x", AttrValue::from(1u64))]);
        assert!(sink.contents().is_empty());
        set_level(Level::Full);
        event("test.ev", &[("x", AttrValue::from(1u64))]);
        clear_trace();
        set_level(Level::Off);
        let trace = sink.contents();
        assert_eq!(trace.lines().count(), 1);
        let parsed = json::parse_line(trace.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.get_str("type"), Some("event"));
        assert_eq!(parsed.get_u64("x"), Some(1));
    }

    #[test]
    fn flush_emits_counters_and_meta_heads_trace() {
        let _guard = lock();
        static C: Counter = Counter::new("test.lib.flush");
        set_level(Level::Counters);
        reset_metrics();
        let sink = set_trace_memory();
        run_meta(&[("tool", AttrValue::from("unit"))]);
        C.add(7);
        flush();
        clear_trace();
        set_level(Level::Off);
        let trace = sink.contents();
        let first = json::parse_line(trace.lines().next().unwrap()).unwrap();
        assert_eq!(first.get_str("type"), Some("meta"));
        assert_eq!(first.get_u64("schema_version"), Some(SCHEMA_VERSION));
        assert!(
            trace
                .lines()
                .filter_map(|l| json::parse_line(l).ok())
                .any(|o| o.get_str("name") == Some("test.lib.flush")
                    && o.get_u64("value") == Some(7)),
            "flushed counter missing: {trace}"
        );
    }

    #[test]
    fn sample_store_median() {
        let _guard = lock();
        reset_metrics();
        record_sample_ms("test.case", 3.0);
        record_sample_ms("test.case", 1.0);
        record_sample_ms("test.case", 2.0);
        assert_eq!(sample_median_ms("test.case"), Some(2.0));
        assert_eq!(sample_median_ms("test.missing"), None);
        let med = time_median_ms("test.timed", 0, 3, || {
            std::hint::black_box(0);
        });
        assert!(med >= 0.0);
        assert_eq!(sample_values_ms("test.timed").len(), 3);
    }
}
