//! Flat JSON-object lines: the writer behind every emitted trace line
//! and the matching parser used by [`crate::schema`] / [`crate::report`].
//!
//! The trace format is deliberately restricted to *flat* objects — no
//! nested objects or arrays — so both sides stay small, dependency-free,
//! and trivially greppable. The parser therefore rejects nesting; this
//! is a feature of the schema, not a shortcut.

use crate::AttrValue;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Builder for one flat JSON object line. The `"type"` field is always
/// first so line kinds can be classified without full parsing.
///
/// ```
/// let mut o = qobs::json::Obj::new("counter");
/// o.field_str("name", "qsim.kernel.diag1");
/// o.field_u64("value", 42);
/// assert_eq!(
///     o.finish(),
///     r#"{"type":"counter","name":"qsim.kernel.diag1","value":42}"#
/// );
/// ```
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Start an object with the given `"type"` field value.
    pub fn new(type_name: &str) -> Obj {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"type\":");
        push_json_string(&mut buf, type_name);
        Obj { buf }
    }

    /// Append a string field.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        push_json_string(&mut self.buf, value);
    }

    /// Append an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.buf.push_str(&value.to_string());
    }

    /// Append a float field. Non-finite values are emitted as `0` (JSON
    /// has no NaN/Inf).
    pub fn field_f64(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push('0');
        }
    }

    /// Append a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Append an [`AttrValue`] field with the JSON type matching its
    /// variant.
    pub fn field_attr(&mut self, key: &str, value: &AttrValue) {
        match value {
            AttrValue::Str(s) => self.field_str(key, s),
            AttrValue::UInt(n) => self.field_u64(key, *n),
            AttrValue::Float(f) => self.field_f64(key, *f),
            AttrValue::Bool(b) => self.field_bool(key, *b),
        }
    }

    /// Close the object and return the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    fn key(&mut self, key: &str) {
        self.buf.push(',');
        push_json_string(&mut self.buf, key);
        self.buf.push(':');
    }
}

fn push_json_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// One parsed JSON value. The trace format is flat, so there are no
/// object or array variants.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A JSON string, unescaped.
    Str(String),
}

/// One parsed flat JSON object, preserving field order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedObj {
    fields: Vec<(String, Value)>,
}

impl ParsedObj {
    /// Look up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field as a string, if present and a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Field as a non-negative integer, if present and integral.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Field as a float, if present and numeric.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// Field as a bool, if present and boolean.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// All fields in source order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }
}

/// Parse one flat JSON object line. Returns a descriptive error for
/// malformed input, duplicate keys, or nested objects/arrays (which the
/// trace format forbids).
pub fn parse_line(line: &str) -> Result<ParsedObj, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut obj = ParsedObj::default();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            if obj.get(&key).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            obj.fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        p.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after object at {}", p.pos));
    }
    Ok(obj)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            got => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                got.map(|g| g as char)
            )),
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b'{' | b'[') => Err(format!(
                "nested object/array at byte {} (trace lines are flat)",
                self.pos
            )),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!(
                "unexpected value start at byte {}: {:?}",
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("malformed number {text:?} at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "non-utf8 \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        self.pos += 4;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(format!(
                            "bad escape {:?} at byte {}",
                            other.map(|b| b as char),
                            self.pos
                        ))
                    }
                },
                Some(byte) => {
                    // Collect the full UTF-8 sequence starting here.
                    let char_start = self.pos - 1;
                    let width = utf8_width(byte);
                    if width == 0 || char_start + width > self.bytes.len() {
                        return Err(format!("invalid utf-8 at byte {char_start}"));
                    }
                    let s = std::str::from_utf8(&self.bytes[char_start..char_start + width])
                        .map_err(|_| format!("invalid utf-8 at byte {char_start}"))?;
                    out.push_str(s);
                    self.pos = char_start + width;
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_field_kinds() {
        let mut o = Obj::new("event");
        o.field_str("name", "weird \"quotes\"\nand\ttabs");
        o.field_u64("count", 18_446_744_073_709_551_615);
        o.field_f64("ratio", 0.125);
        o.field_bool("ok", true);
        let line = o.finish();
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.get_str("type"), Some("event"));
        assert_eq!(parsed.get_str("name"), Some("weird \"quotes\"\nand\ttabs"));
        // u64::MAX loses precision through f64; the schema only relies
        // on exactness for realistic counter magnitudes.
        assert!(parsed.get_f64("count").is_some());
        assert_eq!(parsed.get_f64("ratio"), Some(0.125));
        assert_eq!(parsed.get_bool("ok"), Some(true));
    }

    #[test]
    fn round_trip_unicode() {
        let mut o = Obj::new("meta");
        o.field_str("name", "qubit-φ π≈3.14159 — ok");
        let parsed = parse_line(&o.finish()).unwrap();
        assert_eq!(parsed.get_str("name"), Some("qubit-φ π≈3.14159 — ok"));
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_line(r#"{"a": {"b": 1}}"#).is_err());
        assert!(parse_line(r#"{"a": [1, 2]}"#).is_err());
        assert!(parse_line(r#"{"a": 1} trailing"#).is_err());
        assert!(parse_line(r#"{"a": 1"#).is_err());
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"a": 1, "a": 2}"#).is_err());
    }

    #[test]
    fn parses_empty_object_and_null() {
        let empty = parse_line("{}").unwrap();
        assert!(empty.fields().is_empty());
        let with_null = parse_line(r#"{"x": null, "y": -2.5e1}"#).unwrap();
        assert_eq!(with_null.get(&"x".to_string()[..]), Some(&Value::Null));
        assert_eq!(with_null.get_f64("y"), Some(-25.0));
    }

    #[test]
    fn u64_helper_rejects_non_integers() {
        let o = parse_line(r#"{"a": 1.5, "b": -3, "c": 7}"#).unwrap();
        assert_eq!(o.get_u64("a"), None);
        assert_eq!(o.get_u64("b"), None);
        assert_eq!(o.get_u64("c"), Some(7));
    }
}
