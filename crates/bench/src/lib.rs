//! # bench — the TetrisLock experiment harness
//!
//! Shared experiment drivers behind the table/figure regeneration
//! binaries:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table I (overhead + accuracy, 20-iteration averages) |
//! | `fig4` | Figure 4 (TVD of obfuscated vs restored circuits) |
//! | `attack_complexity` | §IV-C / Eq. 1 comparison vs Saki et al. |
//! | `baselines` | §II-C qualitative comparison vs prior schemes |
//!
//! Run with `--release`; the 12-qubit noisy runs are slow in debug mode.

use qmetrics::stats::{percent_change, summarize, Summary};
use qmetrics::{accuracy, tvd_vs_ideal};
use qsim::{Device, Sampler};
use revlib::Benchmark;
use tetrislock::recombine::recombine;
use tetrislock::{InsertionConfig, Obfuscator};

/// Shots per simulation, matching the paper ("all simulations were
/// performed with 1,000 shots").
pub const SHOTS: u64 = 1000;

/// Iterations per data point, matching Table I ("averages of 20
/// iterations").
pub const ITERATIONS: u64 = 20;

/// Picks the noisy device hosting a benchmark: the 5-qubit FakeValencia
/// model when it fits, otherwise the widened FakeValencia-style device
/// (see DESIGN.md §2 on this substitution).
pub fn device_for(num_qubits: u32) -> Device {
    if num_qubits <= 5 {
        Device::fake_valencia()
    } else {
        Device::fake_valencia_extended(num_qubits)
    }
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Original circuit depth.
    pub depth: usize,
    /// Mean obfuscated depth (paper: identical to `depth`).
    pub depth_obfuscated: f64,
    /// Original gate count.
    pub gates: usize,
    /// Mean obfuscated gate count.
    pub gates_obfuscated: f64,
    /// Mean gate-count change in percent.
    pub gate_change_percent: f64,
    /// Mean total inserted-gate count, both halves (the paper's "1–4
    /// gates").
    pub inserted: f64,
    /// Mean accuracy of the original circuit under device noise.
    pub accuracy: f64,
    /// Mean accuracy of the recombined (restored) circuit.
    pub accuracy_restored: f64,
    /// Accuracy change in percent (paper reports the absolute drop).
    pub accuracy_change_percent: f64,
}

/// Runs the Table I experiment for one benchmark.
///
/// Per iteration: obfuscate with a fresh seed (gate limit 4, X/CX
/// policy), split with an interlocking pattern, recombine, and measure
/// original vs restored accuracy under the device noise model.
///
/// # Panics
///
/// Panics if simulation fails (register too large for the simulator).
pub fn table1_row(bench: &Benchmark, iterations: u64, shots: u64) -> TableRow {
    let circuit = bench.circuit();
    let device = device_for(circuit.num_qubits());
    let expected = bench.expected_output();

    let mut depth_obf = Vec::new();
    let mut gates_obf = Vec::new();
    let mut inserted = Vec::new();
    let mut acc_orig = Vec::new();
    let mut acc_restored = Vec::new();

    for iter in 0..iterations {
        let obf = Obfuscator::new()
            .with_config(InsertionConfig {
                seed: iter,
                ..Default::default()
            })
            .obfuscate(circuit);
        depth_obf.push(obf.obfuscated().depth() as f64);
        gates_obf.push(obf.obfuscated().gate_count() as f64);
        inserted.push(obf.insertion().gate_overhead() as f64);

        let split = obf.split(iter.wrapping_mul(0x9E37_79B9).wrapping_add(17));
        let restored = recombine(&split).expect("recombination is total");

        let sampler = Sampler::new(shots).with_seed(1000 + iter);
        let counts = sampler
            .run_noisy(circuit, device.noise())
            .expect("simulation fits");
        acc_orig.push(accuracy(&counts, expected));

        let sampler = Sampler::new(shots).with_seed(2000 + iter);
        let counts = sampler
            .run_noisy(&restored, device.noise())
            .expect("simulation fits");
        acc_restored.push(accuracy(&counts, expected));
    }

    let accuracy_mean = summarize(&acc_orig).mean;
    let restored_mean = summarize(&acc_restored).mean;
    TableRow {
        name: bench.name().to_string(),
        depth: circuit.depth(),
        depth_obfuscated: summarize(&depth_obf).mean,
        gates: circuit.gate_count(),
        gates_obfuscated: summarize(&gates_obf).mean,
        gate_change_percent: percent_change(
            circuit.gate_count() as f64,
            summarize(&gates_obf).mean,
        ),
        inserted: summarize(&inserted).mean,
        accuracy: accuracy_mean,
        accuracy_restored: restored_mean,
        accuracy_change_percent: percent_change(accuracy_mean, restored_mean).abs(),
    }
}

/// One benchmark's Figure 4 data: TVD samples for the obfuscated
/// (masked `RC`) and restored (`R⁻¹RC` recombined) circuits.
#[derive(Debug, Clone)]
pub struct TvdPoint {
    /// Benchmark name.
    pub name: String,
    /// TVD of the masked circuit vs the theoretical output, per iteration.
    pub obfuscated: Vec<f64>,
    /// TVD of the restored circuit vs the theoretical output.
    pub restored: Vec<f64>,
}

impl TvdPoint {
    /// Summary of the obfuscated-circuit TVDs.
    pub fn obfuscated_summary(&self) -> Summary {
        summarize(&self.obfuscated)
    }

    /// Summary of the restored-circuit TVDs.
    pub fn restored_summary(&self) -> Summary {
        summarize(&self.restored)
    }
}

/// Runs the Figure 4 experiment for one benchmark.
///
/// # Panics
///
/// Panics if simulation fails.
pub fn fig4_point(bench: &Benchmark, iterations: u64, shots: u64) -> TvdPoint {
    let circuit = bench.circuit();
    let device = device_for(circuit.num_qubits());
    let expected = bench.expected_output();

    let mut obfuscated = Vec::new();
    let mut restored = Vec::new();
    for iter in 0..iterations {
        let obf = Obfuscator::new()
            .with_config(InsertionConfig {
                seed: 7000 + iter,
                ..Default::default()
            })
            .obfuscate(circuit);

        // "Obfuscated" in Fig. 4 = what runs without the R⁻¹ key.
        let masked = obf.masked_circuit();
        let counts = Sampler::new(shots)
            .with_seed(3000 + iter)
            .run_noisy(&masked, device.noise())
            .expect("simulation fits");
        obfuscated.push(tvd_vs_ideal(&counts, expected));

        let split = obf.split(4000 + iter);
        let rejoined = recombine(&split).expect("recombination is total");
        let counts = Sampler::new(shots)
            .with_seed(5000 + iter)
            .run_noisy(&rejoined, device.noise())
            .expect("simulation fits");
        restored.push(tvd_vs_ideal(&counts, expected));
    }
    TvdPoint {
        name: bench.name().to_string(),
        obfuscated,
        restored,
    }
}

/// Renders a `0..=1` value as a fixed-width ASCII bar.
pub fn bar(value: f64, width: usize) -> String {
    let filled = (value.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "░".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_selection_by_size() {
        assert_eq!(device_for(4).name(), "fake_valencia");
        assert_eq!(device_for(5).name(), "fake_valencia");
        assert!(device_for(7).name().contains("ext7"));
        assert!(device_for(12).name().contains("ext12"));
    }

    #[test]
    fn table1_row_smoke() {
        let bench = revlib::adder_1bit();
        let row = table1_row(&bench, 3, 200);
        assert_eq!(row.depth, 5);
        // Depth must be preserved exactly in every iteration.
        assert!((row.depth_obfuscated - row.depth as f64).abs() < 1e-12);
        assert!(row.accuracy > 0.5);
        assert!(row.accuracy_restored > 0.5);
        assert!(row.gates_obfuscated >= row.gates as f64);
    }

    #[test]
    fn fig4_point_smoke() {
        let bench = revlib::mini_alu();
        let point = fig4_point(&bench, 3, 200);
        assert_eq!(point.obfuscated.len(), 3);
        // Restored TVD must be small (noise only).
        assert!(point.restored_summary().mean < 0.3);
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(0.0, 4), "░░░░");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(0.5, 4), "██░░");
    }
}

/// A seeded Clifford+T circuit over {H, S, T, X, CX, CZ} at the
/// canonical per-width seed `0xC0DE + n` — the shared workload
/// generator for the `perfdump` scaling suite and the Criterion
/// `statevector_scaling` / `statevector_fusion` groups, so the two
/// tools time identical circuits.
pub fn clifford_t_circuit(n: u32, gates: usize) -> qcir::Circuit {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xC0DE + n as u64);
    let mut c = qcir::Circuit::with_name(n, format!("clifford_t_{n}q"));
    for _ in 0..gates {
        match rng.gen_range(0..6u8) {
            0 => c.h(rng.gen_range(0..n)),
            1 => c.s(rng.gen_range(0..n)),
            2 => c.t(rng.gen_range(0..n)),
            3 => c.x(rng.gen_range(0..n)),
            4 => {
                let a = rng.gen_range(0..n);
                let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                c.cx(a, b)
            }
            _ => {
                let a = rng.gen_range(0..n);
                let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                c.cz(a, b)
            }
        };
    }
    c
}

/// The pre-kernel-engine statevector loops, reproduced verbatim as the
/// recorded performance baseline.
///
/// `qsim` keeps an identical copy behind `#[cfg(test)]` as the
/// *correctness* reference for its kernel-equivalence suite; this copy
/// exists so the `perfdump` binary and the Criterion comparison groups
/// can measure the stride/fused/threaded engine against the exact
/// pre-optimisation code on every run, keeping the speedup claim in
/// `BENCH_qsim.json` honest rather than historical.
pub mod naive {
    use qcir::{Circuit, Gate, Instruction, Qubit};
    use qsim::complex::C64;
    use qsim::matrix::{gate_matrix, Matrix};

    /// Runs `circuit` on `|0…0⟩` with the naive full-scan kernels and
    /// returns the final amplitudes.
    pub fn from_circuit(circuit: &Circuit) -> Vec<C64> {
        let mut amps = vec![C64::ZERO; 1usize << circuit.num_qubits()];
        amps[0] = C64::ONE;
        for inst in circuit.iter() {
            apply(&mut amps, inst);
        }
        amps
    }

    /// The original (pre-engine) `Statevector::apply` dispatch.
    pub fn apply(amps: &mut [C64], inst: &Instruction) {
        match inst.gate() {
            Gate::I => {}
            Gate::X => apply_x(amps, inst.qubits()[0]),
            Gate::CX => apply_cx(amps, inst.qubits()[0], inst.qubits()[1]),
            Gate::CCX => {
                let q = inst.qubits();
                apply_mcx(amps, &[q[0], q[1]], q[2]);
            }
            Gate::Mcx(_) => {
                let q = inst.qubits();
                let (controls, target) = q.split_at(q.len() - 1);
                apply_mcx(amps, controls, target[0]);
            }
            Gate::Swap => apply_swap(amps, inst.qubits()[0], inst.qubits()[1]),
            gate if gate.arity() == 1 => {
                apply_1q(amps, &gate_matrix(gate), inst.qubits()[0]);
            }
            gate => {
                apply_kq(amps, &gate_matrix(gate), inst.qubits());
            }
        }
    }

    fn apply_x(amps: &mut [C64], q: Qubit) {
        let bit = 1usize << q.index();
        for i in 0..amps.len() {
            if i & bit == 0 {
                amps.swap(i, i | bit);
            }
        }
    }

    fn apply_cx(amps: &mut [C64], control: Qubit, target: Qubit) {
        let cbit = 1usize << control.index();
        let tbit = 1usize << target.index();
        for i in 0..amps.len() {
            if i & cbit != 0 && i & tbit == 0 {
                amps.swap(i, i | tbit);
            }
        }
    }

    fn apply_mcx(amps: &mut [C64], controls: &[Qubit], target: Qubit) {
        let cmask: usize = controls.iter().map(|q| 1usize << q.index()).sum();
        let tbit = 1usize << target.index();
        for i in 0..amps.len() {
            if i & cmask == cmask && i & tbit == 0 {
                amps.swap(i, i | tbit);
            }
        }
    }

    fn apply_swap(amps: &mut [C64], a: Qubit, b: Qubit) {
        let abit = 1usize << a.index();
        let bbit = 1usize << b.index();
        for i in 0..amps.len() {
            if i & abit != 0 && i & bbit == 0 {
                amps.swap(i, (i & !abit) | bbit);
            }
        }
    }

    fn apply_1q(amps: &mut [C64], m: &Matrix, q: Qubit) {
        let bit = 1usize << q.index();
        let (m00, m01, m10, m11) = (m.get(0, 0), m.get(0, 1), m.get(1, 0), m.get(1, 1));
        for i in 0..amps.len() {
            if i & bit == 0 {
                let a0 = amps[i];
                let a1 = amps[i | bit];
                amps[i] = m00 * a0 + m01 * a1;
                amps[i | bit] = m10 * a0 + m11 * a1;
            }
        }
    }

    fn apply_kq(amps: &mut [C64], m: &Matrix, qubits: &[Qubit]) {
        let k = qubits.len();
        let dim = 1usize << k;
        let bits: Vec<usize> = qubits.iter().map(|q| 1usize << q.index()).collect();
        let mask: usize = bits.iter().sum();
        let mut gathered = vec![C64::ZERO; dim];
        for base in 0..amps.len() {
            if base & mask != 0 {
                continue;
            }
            for (pattern, slot) in gathered.iter_mut().enumerate() {
                let mut idx = base;
                for (bit_pos, bit) in bits.iter().enumerate() {
                    if pattern & (1 << bit_pos) != 0 {
                        idx |= bit;
                    }
                }
                *slot = amps[idx];
            }
            for row in 0..dim {
                let mut acc = C64::ZERO;
                for (col, &g) in gathered.iter().enumerate() {
                    acc += m.get(row, col) * g;
                }
                let mut idx = base;
                for (bit_pos, bit) in bits.iter().enumerate() {
                    if row & (1 << bit_pos) != 0 {
                        idx |= bit;
                    }
                }
                amps[idx] = acc;
            }
        }
    }
}

/// Structural validation for `BENCH_qsim.json`.
///
/// The workspace vendors no JSON parser, so these checks are
/// line-oriented over the `perfdump` emitter's fixed layout: a header
/// field set plus one case object per line. The binary validates its
/// own output before writing it, and CI's smoke run revalidates the
/// freshly emitted file, so schema drift between the emitter and the
/// perf-history consumers fails loudly instead of rotting silently.
pub mod schema {
    /// Keys every case object must carry.
    const CASE_KEYS: [&str; 8] = [
        "name",
        "qubits",
        "gates",
        "reps",
        "fused_ms",
        "unfused_ms",
        "naive_ms",
        "speedup_vs_naive",
    ];

    /// Checks that `json` has the `BENCH_qsim.json` schema-version-1
    /// shape: the suite/header fields, an `engine` block whose
    /// `detected_workers` is at least 1, and a non-empty case list in
    /// which every case carries all eight per-case keys and a numeric
    /// `fused_ms`.
    ///
    /// # Example
    ///
    /// ```
    /// use bench::schema::validate_qsim_bench_json;
    ///
    /// let doc = concat!(
    ///     "{\n  \"suite\": \"qsim_statevector\",\n  \"schema_version\": 1,\n",
    ///     "  \"smoke\": true,\n",
    ///     "  \"engine\": {\"max_qubits\": 28, \"parallel_min_qubits\": 18, ",
    ///     "\"detected_workers\": 4},\n  \"cases\": [\n",
    ///     "    {\"name\": \"rd53\", \"qubits\": 7, \"gates\": 12, \"reps\": 3, ",
    ///     "\"fused_ms\": 0.5, \"unfused_ms\": 0.6, \"naive_ms\": 1.0, ",
    ///     "\"speedup_vs_naive\": 2.00}\n  ]\n}\n",
    /// );
    /// assert!(validate_qsim_bench_json(doc).is_ok());
    /// assert!(validate_qsim_bench_json("{}").is_err());
    /// ```
    pub fn validate_qsim_bench_json(json: &str) -> Result<(), String> {
        require(json, "\"suite\": \"qsim_statevector\"")?;
        require(json, "\"schema_version\": 1")?;
        if !json.contains("\"smoke\": true") && !json.contains("\"smoke\": false") {
            return Err("missing boolean \"smoke\" field".into());
        }
        let max_qubits = uint_field(json, "max_qubits")?;
        let parallel_min = uint_field(json, "parallel_min_qubits")?;
        let workers = uint_field(json, "detected_workers")?;
        if workers == 0 {
            return Err("\"detected_workers\" must be at least 1".into());
        }
        if parallel_min > max_qubits {
            return Err(format!(
                "\"parallel_min_qubits\" ({parallel_min}) exceeds \"max_qubits\" ({max_qubits})"
            ));
        }
        require(json, "\"cases\": [")?;
        let cases: Vec<&str> = json
            .lines()
            .filter(|line| line.contains("\"name\":"))
            .collect();
        if cases.is_empty() {
            return Err("\"cases\" holds no case objects".into());
        }
        for line in &cases {
            for key in CASE_KEYS {
                if !line.contains(&format!("\"{key}\":")) {
                    return Err(format!("case object missing \"{key}\": {}", line.trim()));
                }
            }
            if line.contains("\"fused_ms\": null") {
                return Err(format!("case has null \"fused_ms\": {}", line.trim()));
            }
        }
        Ok(())
    }

    fn require(json: &str, needle: &str) -> Result<(), String> {
        if json.contains(needle) {
            Ok(())
        } else {
            Err(format!("missing required fragment `{needle}`"))
        }
    }

    /// Parses the unsigned integer following `"key": `.
    fn uint_field(json: &str, key: &str) -> Result<u64, String> {
        let marker = format!("\"{key}\": ");
        let start = json
            .find(&marker)
            .ok_or_else(|| format!("missing \"{key}\" field"))?
            + marker.len();
        let digits: String = json[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits
            .parse()
            .map_err(|_| format!("\"{key}\" is not an unsigned integer"))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn valid_doc() -> String {
            concat!(
                "{\n  \"suite\": \"qsim_statevector\",\n  \"schema_version\": 1,\n",
                "  \"smoke\": false,\n",
                "  \"engine\": {\"max_qubits\": 28, \"parallel_min_qubits\": 18, ",
                "\"detected_workers\": 4},\n  \"cases\": [\n",
                "    {\"name\": \"rd53\", \"qubits\": 7, \"gates\": 12, \"reps\": 3, ",
                "\"fused_ms\": 0.5, \"unfused_ms\": 0.6, \"naive_ms\": 1.0, ",
                "\"speedup_vs_naive\": 2.00},\n",
                "    {\"name\": \"stimulus_20q_2trials\", \"qubits\": 20, \"gates\": 40, ",
                "\"reps\": 3, \"fused_ms\": 9.1, \"unfused_ms\": null, \"naive_ms\": null, ",
                "\"speedup_vs_naive\": null}\n  ]\n}\n",
            )
            .to_string()
        }

        #[test]
        fn accepts_the_emitters_layout() {
            validate_qsim_bench_json(&valid_doc()).expect("valid document");
        }

        #[test]
        fn rejects_missing_case_key() {
            let doc = valid_doc().replace("\"reps\": 3, ", "");
            let err = validate_qsim_bench_json(&doc).unwrap_err();
            assert!(err.contains("reps"), "got: {err}");
        }

        #[test]
        fn rejects_zero_workers_and_empty_cases() {
            let doc = valid_doc().replace("\"detected_workers\": 4", "\"detected_workers\": 0");
            assert!(validate_qsim_bench_json(&doc)
                .unwrap_err()
                .contains("detected_workers"));

            let doc = valid_doc()
                .lines()
                .filter(|l| !l.contains("\"name\":"))
                .collect::<Vec<_>>()
                .join("\n");
            assert!(validate_qsim_bench_json(&doc)
                .unwrap_err()
                .contains("no case objects"));
        }

        #[test]
        fn rejects_null_fused_ms_and_wrong_suite() {
            let doc = valid_doc().replace("\"fused_ms\": 0.5", "\"fused_ms\": null");
            assert!(validate_qsim_bench_json(&doc)
                .unwrap_err()
                .contains("fused_ms"));
            let doc = valid_doc().replace("qsim_statevector", "qsim_other");
            assert!(validate_qsim_bench_json(&doc).is_err());
        }
    }
}
