//! # bench — the TetrisLock experiment harness
//!
//! Shared experiment drivers behind the table/figure regeneration
//! binaries:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table I (overhead + accuracy, 20-iteration averages) |
//! | `fig4` | Figure 4 (TVD of obfuscated vs restored circuits) |
//! | `attack_complexity` | §IV-C / Eq. 1 comparison vs Saki et al. |
//! | `baselines` | §II-C qualitative comparison vs prior schemes |
//!
//! Run with `--release`; the 12-qubit noisy runs are slow in debug mode.

use qmetrics::stats::{percent_change, summarize, Summary};
use qmetrics::{accuracy, tvd_vs_ideal};
use qsim::{Device, Sampler};
use revlib::Benchmark;
use tetrislock::recombine::recombine;
use tetrislock::{InsertionConfig, Obfuscator};

/// Shots per simulation, matching the paper ("all simulations were
/// performed with 1,000 shots").
pub const SHOTS: u64 = 1000;

/// Iterations per data point, matching Table I ("averages of 20
/// iterations").
pub const ITERATIONS: u64 = 20;

/// Picks the noisy device hosting a benchmark: the 5-qubit FakeValencia
/// model when it fits, otherwise the widened FakeValencia-style device
/// (see DESIGN.md §2 on this substitution).
pub fn device_for(num_qubits: u32) -> Device {
    if num_qubits <= 5 {
        Device::fake_valencia()
    } else {
        Device::fake_valencia_extended(num_qubits)
    }
}

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Original circuit depth.
    pub depth: usize,
    /// Mean obfuscated depth (paper: identical to `depth`).
    pub depth_obfuscated: f64,
    /// Original gate count.
    pub gates: usize,
    /// Mean obfuscated gate count.
    pub gates_obfuscated: f64,
    /// Mean gate-count change in percent.
    pub gate_change_percent: f64,
    /// Mean total inserted-gate count, both halves (the paper's "1–4
    /// gates").
    pub inserted: f64,
    /// Mean accuracy of the original circuit under device noise.
    pub accuracy: f64,
    /// Mean accuracy of the recombined (restored) circuit.
    pub accuracy_restored: f64,
    /// Accuracy change in percent (paper reports the absolute drop).
    pub accuracy_change_percent: f64,
}

/// Runs the Table I experiment for one benchmark.
///
/// Per iteration: obfuscate with a fresh seed (gate limit 4, X/CX
/// policy), split with an interlocking pattern, recombine, and measure
/// original vs restored accuracy under the device noise model.
///
/// # Panics
///
/// Panics if simulation fails (register too large for the simulator).
pub fn table1_row(bench: &Benchmark, iterations: u64, shots: u64) -> TableRow {
    let circuit = bench.circuit();
    let device = device_for(circuit.num_qubits());
    let expected = bench.expected_output();

    let mut depth_obf = Vec::new();
    let mut gates_obf = Vec::new();
    let mut inserted = Vec::new();
    let mut acc_orig = Vec::new();
    let mut acc_restored = Vec::new();

    for iter in 0..iterations {
        let obf = Obfuscator::new()
            .with_config(InsertionConfig {
                seed: iter,
                ..Default::default()
            })
            .obfuscate(circuit);
        depth_obf.push(obf.obfuscated().depth() as f64);
        gates_obf.push(obf.obfuscated().gate_count() as f64);
        inserted.push(obf.insertion().gate_overhead() as f64);

        let split = obf.split(iter.wrapping_mul(0x9E37_79B9).wrapping_add(17));
        let restored = recombine(&split).expect("recombination is total");

        let sampler = Sampler::new(shots).with_seed(1000 + iter);
        let counts = sampler
            .run_noisy(circuit, device.noise())
            .expect("simulation fits");
        acc_orig.push(accuracy(&counts, expected));

        let sampler = Sampler::new(shots).with_seed(2000 + iter);
        let counts = sampler
            .run_noisy(&restored, device.noise())
            .expect("simulation fits");
        acc_restored.push(accuracy(&counts, expected));
    }

    let accuracy_mean = summarize(&acc_orig).mean;
    let restored_mean = summarize(&acc_restored).mean;
    TableRow {
        name: bench.name().to_string(),
        depth: circuit.depth(),
        depth_obfuscated: summarize(&depth_obf).mean,
        gates: circuit.gate_count(),
        gates_obfuscated: summarize(&gates_obf).mean,
        gate_change_percent: percent_change(
            circuit.gate_count() as f64,
            summarize(&gates_obf).mean,
        ),
        inserted: summarize(&inserted).mean,
        accuracy: accuracy_mean,
        accuracy_restored: restored_mean,
        accuracy_change_percent: percent_change(accuracy_mean, restored_mean).abs(),
    }
}

/// One benchmark's Figure 4 data: TVD samples for the obfuscated
/// (masked `RC`) and restored (`R⁻¹RC` recombined) circuits.
#[derive(Debug, Clone)]
pub struct TvdPoint {
    /// Benchmark name.
    pub name: String,
    /// TVD of the masked circuit vs the theoretical output, per iteration.
    pub obfuscated: Vec<f64>,
    /// TVD of the restored circuit vs the theoretical output.
    pub restored: Vec<f64>,
}

impl TvdPoint {
    /// Summary of the obfuscated-circuit TVDs.
    pub fn obfuscated_summary(&self) -> Summary {
        summarize(&self.obfuscated)
    }

    /// Summary of the restored-circuit TVDs.
    pub fn restored_summary(&self) -> Summary {
        summarize(&self.restored)
    }
}

/// Runs the Figure 4 experiment for one benchmark.
///
/// # Panics
///
/// Panics if simulation fails.
pub fn fig4_point(bench: &Benchmark, iterations: u64, shots: u64) -> TvdPoint {
    let circuit = bench.circuit();
    let device = device_for(circuit.num_qubits());
    let expected = bench.expected_output();

    let mut obfuscated = Vec::new();
    let mut restored = Vec::new();
    for iter in 0..iterations {
        let obf = Obfuscator::new()
            .with_config(InsertionConfig {
                seed: 7000 + iter,
                ..Default::default()
            })
            .obfuscate(circuit);

        // "Obfuscated" in Fig. 4 = what runs without the R⁻¹ key.
        let masked = obf.masked_circuit();
        let counts = Sampler::new(shots)
            .with_seed(3000 + iter)
            .run_noisy(&masked, device.noise())
            .expect("simulation fits");
        obfuscated.push(tvd_vs_ideal(&counts, expected));

        let split = obf.split(4000 + iter);
        let rejoined = recombine(&split).expect("recombination is total");
        let counts = Sampler::new(shots)
            .with_seed(5000 + iter)
            .run_noisy(&rejoined, device.noise())
            .expect("simulation fits");
        restored.push(tvd_vs_ideal(&counts, expected));
    }
    TvdPoint {
        name: bench.name().to_string(),
        obfuscated,
        restored,
    }
}

/// Renders a `0..=1` value as a fixed-width ASCII bar.
pub fn bar(value: f64, width: usize) -> String {
    let filled = (value.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "░".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_selection_by_size() {
        assert_eq!(device_for(4).name(), "fake_valencia");
        assert_eq!(device_for(5).name(), "fake_valencia");
        assert!(device_for(7).name().contains("ext7"));
        assert!(device_for(12).name().contains("ext12"));
    }

    #[test]
    fn table1_row_smoke() {
        let bench = revlib::adder_1bit();
        let row = table1_row(&bench, 3, 200);
        assert_eq!(row.depth, 5);
        // Depth must be preserved exactly in every iteration.
        assert!((row.depth_obfuscated - row.depth as f64).abs() < 1e-12);
        assert!(row.accuracy > 0.5);
        assert!(row.accuracy_restored > 0.5);
        assert!(row.gates_obfuscated >= row.gates as f64);
    }

    #[test]
    fn fig4_point_smoke() {
        let bench = revlib::mini_alu();
        let point = fig4_point(&bench, 3, 200);
        assert_eq!(point.obfuscated.len(), 3);
        // Restored TVD must be small (noise only).
        assert!(point.restored_summary().mean < 0.3);
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(0.0, 4), "░░░░");
        assert_eq!(bar(1.0, 4), "████");
        assert_eq!(bar(0.5, 4), "██░░");
    }
}
