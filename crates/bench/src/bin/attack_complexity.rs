//! Regenerates the paper's **§IV-C attack-complexity comparison**
//! (Eq. 1): qubit-matching effort for a colluding compiler under
//! TetrisLock's mismatched-width interlocking split vs the equal-width
//! cascading split of Saki et al. \[20\].
//!
//! ```text
//! cargo run -p bench --bin attack_complexity --release
//! ```

use tetrislock::attack::{
    advantage_log10, saki_complexity, saki_complexity_log10, tetrislock_complexity,
    tetrislock_complexity_log10, SegmentCensus,
};

fn main() {
    // The paper's scenario: the attacker holds one segment of n qubits
    // and scans the other compiler's workload for counterparts. We give
    // prior work the most favorable census (k candidates at exactly n
    // qubits) and TetrisLock the same k at *every* size up to the device
    // limit n_max.
    let k = 4u64;
    println!("Attack complexity (Eq. 1) — TetrisLock vs Saki et al. [20]");
    println!("(k = {k} candidate segments per size; n_max = n + 4)\n");
    println!(
        "{:<4} {:>22} {:>22} {:>14}",
        "n", "Saki  k·n!", "TetrisLock Eq.1", "advantage"
    );
    println!("{}", "-".repeat(66));
    for n in (4u32..=28).step_by(2) {
        let n_max = n + 4;
        let census = SegmentCensus::uniform(n_max, k);
        let saki = match saki_complexity(n, k) {
            Ok(v) => format!("{v:>22}"),
            Err(_) => format!("{:>21.1}e", saki_complexity_log10(n, k)),
        };
        let ours = match tetrislock_complexity(n, &census) {
            Ok(v) => format!("{v:>22}"),
            Err(_) => format!("  10^{:>17.1}", tetrislock_complexity_log10(n, &census)),
        };
        println!(
            "{n:<4} {saki} {ours} {:>13.1}x",
            10f64.powf(advantage_log10(n, &census).min(12.0))
        );
    }
    println!();
    println!("log10 view (plot series for the figure):");
    println!("{:<4} {:>14} {:>14}", "n", "log10(Saki)", "log10(Eq.1)");
    for n in (4u32..=40).step_by(4) {
        let census = SegmentCensus::uniform(n + 4, k);
        println!(
            "{n:<4} {:>14.2} {:>14.2}",
            saki_complexity_log10(n, k),
            tetrislock_complexity_log10(n, &census)
        );
    }
    println!("\npaper reference: the Saki complexity kₙ·n! is a single (i=n, j=n)");
    println!("slice of Eq. 1, so TetrisLock's enumeration space strictly dominates.");
}
