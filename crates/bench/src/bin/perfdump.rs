//! `perfdump` — machine-readable statevector/stimulus perf trajectory.
//!
//! Runs a fixed scaling suite — the rd53/rd84 RevLib benchmarks plus
//! random Clifford+T circuits at 16/20/24/28 qubits and one 20-qubit
//! stimulus-tier equivalence check — and writes `BENCH_qsim.json` with
//! the median wall-clock per case. Each statevector case is timed three
//! ways: the default engine (fusion + stride kernels + threading), the
//! unfused engine, and the pre-engine naive full-scan loops
//! ([`bench::naive`]), so the perf history records the speedup on every
//! run instead of claiming it once.
//!
//! ```text
//! cargo run --release -p bench --bin perfdump            # full suite
//! cargo run --release -p bench --bin perfdump -- --smoke # CI smoke
//! cargo run --release -p bench --bin perfdump -- --out path.json
//! ```
//!
//! All timing goes through [`qobs::time_median_ms`] (one untimed
//! warmup, then `reps` recorded samples): the numbers landing in
//! `BENCH_qsim.json` are the same qobs samples a live trace sees, so
//! the two can never disagree.
//!
//! The smoke suite (rd53, rd84, 16q) finishes in seconds and is wired
//! into CI so the emitter can never silently rot. Before writing, the
//! binary validates its own output against
//! [`bench::schema::validate_qsim_bench_json`], so a schema drift
//! fails the smoke run instead of producing a file the perf-history
//! consumers can no longer read. `detected_workers` reports the
//! engine's resolved worker count ([`qsim::resolved_workers`]) —
//! `QSIM_WORKERS` override, detected parallelism, `MAX_WORKERS`
//! clamp — not the raw hardware parallelism.

use qcir::random::RandomCircuitConfig;
use qsim::statevector::{ExecConfig, Statevector, MAX_QUBITS, PARALLEL_MIN_QUBITS};
use qverify::Verifier;
use revlib::{rd53, rd84};

/// One timed case of the suite.
struct CaseResult {
    name: String,
    qubits: u32,
    gates: usize,
    reps: usize,
    fused_ms: f64,
    unfused_ms: Option<f64>,
    naive_ms: Option<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_qsim.json")
        .to_string();

    let mut cases: Vec<CaseResult> = Vec::new();
    let mut suite: Vec<(String, qcir::Circuit, usize)> = vec![
        (
            "rd53".into(),
            rd53().circuit().clone(),
            if smoke { 3 } else { 9 },
        ),
        (
            "rd84".into(),
            rd84().circuit().clone(),
            if smoke { 3 } else { 9 },
        ),
        (
            "clifford_t_16q".into(),
            bench::clifford_t_circuit(16, 200),
            if smoke { 2 } else { 5 },
        ),
    ];
    if !smoke {
        suite.push((
            "clifford_t_20q".into(),
            bench::clifford_t_circuit(20, 160),
            3,
        ));
        suite.push((
            "clifford_t_24q".into(),
            bench::clifford_t_circuit(24, 60),
            2,
        ));
        suite.push((
            format!("clifford_t_{MAX_QUBITS}q"),
            bench::clifford_t_circuit(MAX_QUBITS, 40),
            1,
        ));
    }

    for (name, circuit, reps) in &suite {
        let (name, reps) = (name.clone(), *reps);
        eprintln!(
            "timing {name} ({}q, {} gates)…",
            circuit.num_qubits(),
            circuit.gate_count()
        );
        // The single warmup rep matters even for single-rep cases: the
        // first multi-GiB statevector allocation of the process pays
        // tens of seconds of page faulting that would otherwise be
        // billed to whichever engine happens to run first.
        let fused_ms = qobs::time_median_ms(&format!("perfdump.{name}.fused"), 1, reps, || {
            let mut sv = Statevector::zero(circuit.num_qubits()).expect("within cap");
            sv.apply_circuit_with(circuit, &ExecConfig::default())
                .expect("fits");
            std::hint::black_box(sv.probability(0));
        });
        let unfused_ms = qobs::time_median_ms(&format!("perfdump.{name}.unfused"), 1, reps, || {
            let mut sv = Statevector::zero(circuit.num_qubits()).expect("within cap");
            sv.apply_circuit_with(circuit, &ExecConfig::unfused())
                .expect("fits");
            std::hint::black_box(sv.probability(0));
        });
        // The naive baseline is O(2ⁿ) per gate with a branch per
        // amplitude; one rep suffices past 16 qubits, and at the cap it
        // would take minutes for a number we already record at 24q.
        let naive_ms = (circuit.num_qubits() <= 24).then(|| {
            let naive_reps = if circuit.num_qubits() <= 16 { reps } else { 1 };
            qobs::time_median_ms(&format!("perfdump.{name}.naive"), 1, naive_reps, || {
                std::hint::black_box(bench::naive::from_circuit(circuit));
            })
        });
        cases.push(CaseResult {
            name,
            qubits: circuit.num_qubits(),
            gates: circuit.gate_count(),
            reps,
            fused_ms,
            unfused_ms: Some(unfused_ms),
            naive_ms,
        });
    }

    if !smoke {
        // One stimulus-tier check: the qverify workload that inherits
        // the statevector engine (miter replay on random product
        // states).
        let circuit = qcir::random::random_reversible(&RandomCircuitConfig::new(20, 40, 7));
        eprintln!("timing stimulus_20q…");
        let verifier = Verifier::new().with_trials(2).with_threads(1).with_seed(5);
        let fused_ms = qobs::time_median_ms("perfdump.stimulus_20q_2trials", 1, 3, || {
            let report = verifier
                .check_stimulus(&circuit, &circuit.clone())
                .expect("within stimulus cap");
            assert!(report.verdict.is_equivalent());
        });
        cases.push(CaseResult {
            name: "stimulus_20q_2trials".into(),
            qubits: 20,
            gates: circuit.gate_count(),
            reps: 3,
            fused_ms,
            unfused_ms: None,
            naive_ms: None,
        });
    }

    let json = render_json(&cases, smoke);
    bench::schema::validate_qsim_bench_json(&json)
        .unwrap_or_else(|e| panic!("perfdump emitted a document violating its own schema: {e}"));
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("{json}");
    eprintln!("wrote {out}");
}

fn render_json(cases: &[CaseResult], smoke: bool) -> String {
    let opt = |v: Option<f64>| match v {
        Some(ms) => format!("{ms:.4}"),
        None => "null".to_string(),
    };
    let mut body = String::new();
    for (i, case) in cases.iter().enumerate() {
        let speedup = match case.naive_ms {
            Some(naive) if case.fused_ms > 0.0 => format!("{:.2}", naive / case.fused_ms),
            _ => "null".to_string(),
        };
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"qubits\": {}, \"gates\": {}, \"reps\": {}, \
             \"fused_ms\": {:.4}, \"unfused_ms\": {}, \"naive_ms\": {}, \
             \"speedup_vs_naive\": {}}}{}\n",
            case.name,
            case.qubits,
            case.gates,
            case.reps,
            case.fused_ms,
            opt(case.unfused_ms),
            opt(case.naive_ms),
            speedup,
            if i + 1 < cases.len() { "," } else { "" },
        ));
    }
    format!(
        "{{\n  \"suite\": \"qsim_statevector\",\n  \"schema_version\": 1,\n  \
         \"smoke\": {smoke},\n  \"engine\": {{\"max_qubits\": {}, \
         \"parallel_min_qubits\": {}, \"detected_workers\": {}}},\n  \"cases\": [\n{body}  ]\n}}\n",
        MAX_QUBITS,
        PARALLEL_MIN_QUBITS,
        // The engine's own resolution (QSIM_WORKERS override, detected
        // parallelism, MAX_WORKERS clamp) — the count the kernels
        // actually use, not the raw hardware report.
        qsim::resolved_workers(),
    )
}
