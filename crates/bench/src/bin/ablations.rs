//! Ablation studies for the design choices DESIGN.md §5 calls out:
//!
//! 1. **insertion budget** — how the masking strength (TVD of the masked
//!    circuit) and gate overhead scale with `gate_limit`;
//! 2. **gate policy** — X/CX vs Hadamard vs mixed pools;
//! 3. **segment count** — how k-way splits spread the circuit and
//!    diversify segment widths (the census the Eq. 1 attacker faces).
//!
//! ```text
//! cargo run -p bench --bin ablations --release
//! ```

use bench::device_for;
use qmetrics::stats::summarize;
use qmetrics::tvd_vs_ideal;
use qsim::Sampler;
use tetrislock::multiway::MultiwayPattern;
use tetrislock::{GatePolicy, InsertionConfig, Obfuscator};

const ITERS: u64 = 20;
const SHOTS: u64 = 1000;

fn main() {
    let bench = revlib::rd53();
    let circuit = bench.circuit();
    let device = device_for(circuit.num_qubits());
    let expected = bench.expected_output();

    println!("== ablation 1: insertion budget (rd53, X/CX policy) ==");
    println!(
        "{:<6} {:>9} {:>12} {:>10}",
        "limit", "inserted", "TVD masked", "depth Δ"
    );
    for limit in [0usize, 2, 4, 6, 8] {
        let mut inserted = Vec::new();
        let mut tvds = Vec::new();
        let mut depth_delta = Vec::new();
        for seed in 0..ITERS {
            let obf = Obfuscator::new()
                .with_config(InsertionConfig {
                    gate_limit: limit,
                    seed,
                    ..Default::default()
                })
                .obfuscate(circuit);
            inserted.push(obf.insertion().gate_overhead() as f64);
            depth_delta.push(obf.depth_increase() as f64);
            let counts = Sampler::new(SHOTS)
                .with_seed(900 + seed)
                .run_noisy(&obf.masked_circuit(), device.noise())
                .expect("fits");
            tvds.push(tvd_vs_ideal(&counts, expected));
        }
        println!(
            "{:<6} {:>9.1} {:>12.3} {:>10.1}",
            limit,
            summarize(&inserted).mean,
            summarize(&tvds).mean,
            summarize(&depth_delta).mean,
        );
    }

    println!("\n== ablation 2: gate policy (rd53, budget 4) ==");
    println!("{:<10} {:>9} {:>12}", "policy", "inserted", "TVD masked");
    for (name, policy) in [
        ("x/cx", GatePolicy::XCx),
        ("hadamard", GatePolicy::Hadamard),
        ("mixed", GatePolicy::Mixed),
    ] {
        let mut inserted = Vec::new();
        let mut tvds = Vec::new();
        for seed in 0..ITERS {
            let obf = Obfuscator::new()
                .with_config(InsertionConfig {
                    policy,
                    seed,
                    ..Default::default()
                })
                .obfuscate(circuit);
            inserted.push(obf.insertion().gate_overhead() as f64);
            let counts = Sampler::new(SHOTS)
                .with_seed(700 + seed)
                .run_noisy(&obf.masked_circuit(), device.noise())
                .expect("fits");
            tvds.push(tvd_vs_ideal(&counts, expected));
        }
        println!(
            "{:<10} {:>9.1} {:>12.3}",
            name,
            summarize(&inserted).mean,
            summarize(&tvds).mean,
        );
    }

    println!("\n== ablation 3: segment count (rd84) ==");
    println!(
        "{:<9} {:>14} {:>16} {:>10}",
        "segments", "widths", "distinct widths", "restored"
    );
    let bench = revlib::rd84();
    let circuit = bench.circuit();
    for k in [2usize, 3, 4] {
        let obf = Obfuscator::new().with_seed(5).obfuscate(circuit);
        let pattern = MultiwayPattern::random_for(&obf, k, 31);
        let split = pattern.split(&obf);
        let widths: Vec<String> = split
            .segments
            .iter()
            .map(|s| {
                if s.circuit.is_empty() {
                    "-".to_string()
                } else {
                    s.circuit.num_qubits().to_string()
                }
            })
            .collect();
        let restored = split.recombine().expect("recombination is total");
        let ok = (0..1usize << circuit.num_qubits())
            .step_by(97)
            .all(|x| revlib::classical_eval(&restored, x).expect("classical") == bench.eval(x));
        println!(
            "{:<9} {:>14} {:>16} {:>10}",
            k,
            widths.join("/"),
            split.distinct_widths(),
            if ok { "exact" } else { "BROKEN" },
        );
    }
    println!("\ntakeaways: masking strength saturates once every leading window is");
    println!("used; all policies keep depth delta at exactly 0; more segments");
    println!("diversify the width census the Eq. 1 attacker must enumerate.");
}
