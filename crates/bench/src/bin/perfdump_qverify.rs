//! `perfdump_qverify` — machine-readable ZX-tier perf trajectory.
//!
//! Runs the ZX scaling suite — certify (Clifford+T restore round-trips
//! at 20/30/40 qubits), stall (a corrupted restore whose atom-sum
//! residue cannot be witnessed, i.e. the price of falling through),
//! and witness (wrong-key rejection via the replay-confirmed witness:
//! bit replay at 20/30 qubits, basis-column replay at 20 qubits, and
//! the sharded out-of-core column at 30 qubits — past the statevector
//! cap) — and writes `BENCH_qverify.json` with
//! the median wall-clock per case, so the ZX tier's cost trajectory is
//! recorded on every run instead of claimed once.
//!
//! ```text
//! cargo run --release -p bench --bin perfdump_qverify            # full suite
//! cargo run --release -p bench --bin perfdump_qverify -- --smoke # CI smoke
//! cargo run --release -p bench --bin perfdump_qverify -- --out path.json
//! ```
//!
//! The smoke suite (20-qubit cases only) finishes in seconds and is
//! wired into CI so the emitter can never silently rot. All timing
//! goes through [`qobs::time_median_ms`], so the numbers landing in
//! `BENCH_qverify.json` are the same qobs samples a live trace sees.

use qcir::random::{random_reversible, RandomCircuitConfig};
use qcir::Circuit;
use qverify::{Verdict, Verifier};
use tetrislock::recombine::recombine;
use tetrislock::Obfuscator;

/// One timed case of the suite.
struct CaseResult {
    name: String,
    qubits: u32,
    gates: usize,
    reps: usize,
    median_ms: f64,
    outcome: &'static str,
}

/// A Clifford+T ladder (the certify workload of `benches/qverify.rs`).
fn clifford_t_ladder(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n - 1 {
        c.h(q).t(q).cx(q, q + 1);
    }
    c
}

/// Obfuscate→split→recombine round-trip pair for `c`.
fn roundtrip_pair(c: &Circuit) -> (Circuit, Circuit) {
    let obf = Obfuscator::new().with_seed(11).obfuscate(c);
    let restored = recombine(&obf.split(3)).expect("recombination is total");
    (c.clone(), restored)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_qverify.json")
        .to_string();

    let verifier = Verifier::new();
    let widths: &[u32] = if smoke { &[20] } else { &[20, 30, 40] };
    let reps = if smoke { 2 } else { 5 };
    let mut cases: Vec<CaseResult> = Vec::new();

    for &n in widths {
        // certify: the round-trip miter fully reduces to the identity.
        let (orig, restored) = roundtrip_pair(&clifford_t_ladder(n));
        eprintln!("timing zx_certify_{n}q…");
        let ms = qobs::time_median_ms(&format!("perfdump.zx_certify_{n}q"), 1, reps, || {
            let report = verifier
                .check_zx(&orig, &restored)
                .expect("round-trip miter reduces");
            assert!(report.verdict.is_equivalent());
        });
        cases.push(CaseResult {
            name: format!("zx_certify_{n}q"),
            qubits: n,
            gates: orig.gate_count() + restored.gate_count(),
            reps,
            median_ms: ms,
            outcome: "equivalent",
        });

        // stall: a corrupted restore whose residue cannot be witnessed —
        // the ZX tier must pay the full reduction *and* decline to
        // answer. A bare T residue no longer works here (relative-phase
        // replay certifies diagonal residues), so the corruption is an
        // atom-sum identity: rz(0.2)·rz(−0.1)·rz(−0.1) is formally
        // nonzero to the exact phase algebra (distinct atoms never
        // collapse), stalling the reduction, while its numeric phase
        // (~2.8e-17 rad) sits far below every replay tolerance — so no
        // witness can confirm and the stall honestly falls through.
        let mut corrupted = Circuit::new(n);
        corrupted.rz(0.2, 0).rz(-0.1, 0).rz(-0.1, 0);
        corrupted.compose(&restored).expect("same register");
        eprintln!("timing zx_stall_{n}q…");
        let ms = qobs::time_median_ms(&format!("perfdump.zx_stall_{n}q"), 1, reps, || {
            assert!(verifier.check_zx(&orig, &corrupted).is_none());
        });
        cases.push(CaseResult {
            name: format!("zx_stall_{n}q"),
            qubits: n,
            gates: orig.gate_count() + corrupted.gate_count(),
            reps,
            median_ms: ms,
            outcome: "fall-through",
        });
    }

    // witness (bit replay): a wrong-key reversible pair past the
    // stimulus cap — previously Inconclusive, now rejected exactly.
    let witness_widths: &[u32] = if smoke { &[20] } else { &[20, 30] };
    for &n in witness_widths {
        let orig = random_reversible(&RandomCircuitConfig::new(n, 24, 12));
        let mut bad = orig.clone();
        bad.x(n / 2);
        eprintln!("timing zx_witness_bit_replay_{n}q…");
        let name = format!("perfdump.zx_witness_bit_replay_{n}q");
        let ms = qobs::time_median_ms(&name, 1, reps, || {
            let report = verifier.check_zx(&orig, &bad).expect("witness confirms");
            assert!(matches!(report.verdict, Verdict::Inequivalent { .. }));
        });
        cases.push(CaseResult {
            name: format!("zx_witness_bit_replay_{n}q"),
            qubits: n,
            gates: orig.gate_count() + bad.gate_count(),
            reps,
            median_ms: ms,
            outcome: "inequivalent",
        });
    }

    // witness (basis-column replay): a non-classical residue confirmed
    // by replaying single basis columns of the miter. At 14/20 qubits
    // this costs one sharded column; the 30-qubit case sits past the
    // statevector cap and is only decidable through the out-of-core
    // sharded column — the headline of the witness-past-28q work.
    let column_widths: &[u32] = if smoke { &[14] } else { &[20, 30] };
    for &n in column_widths {
        let mut orig = Circuit::new(n);
        orig.t(0).tdg(0).swap(3, 7);
        let bad = Circuit::new(n);
        let label = if n > qverify::MAX_STIMULUS_QUBITS {
            "sharded"
        } else {
            "basis_replay"
        };
        eprintln!("timing zx_witness_{label}_{n}q…");
        let name = format!("perfdump.zx_witness_{label}_{n}q");
        let ms = qobs::time_median_ms(&name, 1, reps, || {
            let report = verifier.check_zx(&orig, &bad).expect("witness confirms");
            assert!(matches!(report.verdict, Verdict::Inequivalent { .. }));
        });
        cases.push(CaseResult {
            name: format!("zx_witness_{label}_{n}q"),
            qubits: n,
            gates: orig.gate_count(),
            reps,
            median_ms: ms,
            outcome: "inequivalent",
        });
    }

    let json = render_json(&cases, smoke);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("{json}");
    eprintln!("wrote {out}");
}

fn render_json(cases: &[CaseResult], smoke: bool) -> String {
    let mut body = String::new();
    for (i, case) in cases.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"qubits\": {}, \"gates\": {}, \"reps\": {}, \
             \"median_ms\": {:.4}, \"outcome\": \"{}\"}}{}\n",
            case.name,
            case.qubits,
            case.gates,
            case.reps,
            case.median_ms,
            case.outcome,
            if i + 1 < cases.len() { "," } else { "" },
        ));
    }
    format!(
        "{{\n  \"suite\": \"qverify_zx\",\n  \"schema_version\": 1,\n  \"smoke\": {smoke},\n  \
         \"engine\": {{\"max_mcx_controls\": {}, \"stimulus_cap_qubits\": {}, \
         \"dyadic_grid_log\": {}, \"column_cap_qubits\": {}, \
         \"column_branching_cap\": {}}},\n  \"cases\": [\n{body}  ]\n}}\n",
        qverify::MAX_MCX_CONTROLS,
        qverify::MAX_STIMULUS_QUBITS,
        qverify::DYADIC_GRID_LOG,
        qverify::MAX_COLUMN_QUBITS,
        qverify::MAX_COLUMN_BRANCHING,
    )
}
