//! Per-benchmark security report: quantifies the §IV-C security
//! properties of TetrisLock splits — per-compiler design exposure,
//! boundary jaggedness, width mismatch, pair separation, and the Eq. 1
//! complexity the colluding attacker faces (20 split draws each).
//!
//! ```text
//! cargo run -p bench --bin security_report --release
//! ```

use qmetrics::stats::summarize;
use revlib::table1_benchmarks;
use tetrislock::analysis::analyze_split;
use tetrislock::Obfuscator;

fn main() {
    println!("Security report — 20 seeded splits per benchmark\n");
    println!(
        "{:<12} {:>9} {:>9} {:>8} {:>7} {:>10} {:>12} {:>12}",
        "Circuit", "exposL", "exposR", "cuts", "widthΔ", "pairs sep", "log10 Eq.1", "log10 base"
    );
    println!("{}", "-".repeat(88));
    for bench in table1_benchmarks() {
        let c = bench.circuit();
        let mut expos_l = Vec::new();
        let mut expos_r = Vec::new();
        let mut cuts = Vec::new();
        let mut width = Vec::new();
        let mut separated = 0usize;
        let mut eq1 = 0.0;
        let mut base = 0.0;
        let draws = 20u64;
        for seed in 0..draws {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(c);
            let split = obf.split(seed * 13 + 7);
            let report = analyze_split(&obf, &split);
            expos_l.push(report.left_exposure);
            expos_r.push(report.right_exposure);
            cuts.push(report.distinct_cuts as f64);
            width.push(report.width_gap as f64);
            if report.pairs_separated {
                separated += 1;
            }
            eq1 = report.eq1_log10;
            base = report.baseline_log10;
        }
        println!(
            "{:<12} {:>8.0}% {:>8.0}% {:>8.1} {:>7.1} {:>7}/{:<2} {:>12.2} {:>12.2}",
            bench.name(),
            summarize(&expos_l).mean * 100.0,
            summarize(&expos_r).mean * 100.0,
            summarize(&cuts).mean,
            summarize(&width).mean,
            separated,
            draws,
            eq1,
            base,
        );
    }
    println!("\nreading: exposL/exposR = share of the *original* design each compiler");
    println!("sees (never 100%/100% to one party); cuts = distinct cut columns");
    println!("(1 would be a straight cascading cut); pairs sep = splits in which");
    println!("every R/R⁻¹ pair straddles the boundary (must be all).");
}
