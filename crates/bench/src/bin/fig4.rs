//! Regenerates the paper's **Figure 4**: distribution of Total Variation
//! Distance for obfuscated (`RC`, key withheld) vs restored (`R⁻¹RC`
//! recombined) circuits under FakeValencia-style noise.
//!
//! ```text
//! cargo run -p bench --bin fig4 --release
//! ```

use bench::{bar, fig4_point, ITERATIONS, SHOTS};
use revlib::table1_benchmarks;

fn main() {
    println!("Figure 4 — TVD of obfuscated and restored circuits");
    println!("({ITERATIONS} iterations, {SHOTS} shots; TVD vs theoretical output)\n");
    println!(
        "{:<12} {:>10} {:>8} {:<26} {:>10} {:>8}",
        "Circuit", "obf mean", "±std", "", "rest mean", "±std"
    );
    println!("{}", "-".repeat(82));
    for bench in table1_benchmarks() {
        let point = fig4_point(&bench, ITERATIONS, SHOTS);
        let o = point.obfuscated_summary();
        let r = point.restored_summary();
        println!(
            "{:<12} {:>10.3} {:>8.3} [{}] {:>10.3} {:>8.3} [{}]",
            point.name,
            o.mean,
            o.std,
            bar(o.mean, 12),
            r.mean,
            r.std,
            bar(r.mean, 12),
        );
    }
    println!("\npaper reference: obfuscated TVD approaches 1 for large multi-bit");
    println!("circuits (rd53/rd73/rd84) and is smaller for 1-bit circuits;");
    println!("restored TVD stays near the noise floor for every benchmark.");
}
