//! Regenerates the paper's **Table I**: depth, gate count, and accuracy
//! before/after obfuscation across the RevLib benchmarks, averaged over
//! 20 iterations at 1000 shots.
//!
//! ```text
//! cargo run -p bench --bin table1 --release
//! ```

use bench::{table1_row, ITERATIONS, SHOTS};
use revlib::table1_benchmarks;

fn main() {
    println!("Table I — circuit parameters before/after obfuscation");
    println!("(averages of {ITERATIONS} iterations, {SHOTS} shots, FakeValencia-style noise)\n");
    println!(
        "{:<12} {:>5} {:>9} {:>6} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "Circuit",
        "Depth",
        "DepthObf",
        "Gates",
        "GatesObf",
        "Gate+%",
        "Ins.",
        "Acc",
        "AccRest",
        "AccΔ%"
    );
    println!("{}", "-".repeat(95));
    for bench in table1_benchmarks() {
        let row = table1_row(&bench, ITERATIONS, SHOTS);
        println!(
            "{:<12} {:>5} {:>9.1} {:>6} {:>9.1} {:>7.1}% {:>8.1} {:>9.3} {:>9.3} {:>8.2}%",
            row.name,
            row.depth,
            row.depth_obfuscated,
            row.gates,
            row.gates_obfuscated,
            row.gate_change_percent,
            row.inserted,
            row.accuracy,
            row.accuracy_restored,
            row.accuracy_change_percent,
        );
        assert!(
            (row.depth_obfuscated - row.depth as f64).abs() < 1e-9,
            "depth invariant violated for {}",
            row.name
        );
    }
    println!("\npaper reference: 0% depth increase, ~20% average gate increase,");
    println!("accuracy change below ~1% for all circuits.");
}
