//! Regenerates the paper's **§II-C / §IV-C qualitative comparison**
//! against prior defenses:
//!
//! * random reversible-circuit insertion (Das & Ghosh \[16\]) — prepends
//!   `R`, growing depth and leaving a straight `R|C` boundary;
//! * cascading split compilation (Saki et al. \[20\]) — equal qubit counts
//!   on both sides, enabling the `kₙ·n!` matching attack;
//! * TetrisLock — zero depth overhead, jagged boundary, mismatched qubit
//!   counts.
//!
//! ```text
//! cargo run -p bench --bin baselines --release
//! ```

use qcompile::schedule::{schedule, GateTimes};
use qmetrics::stats::summarize;
use revlib::table1_benchmarks;
use tetrislock::baselines::{das_random_insertion, saki_cascade_split};
use tetrislock::{InsertionConfig, Obfuscator};

fn main() {
    println!("Baseline comparison — depth overhead and boundary structure\n");
    println!(
        "{:<12} {:>6} | {:>9} {:>9} | {:>9} {:>10} | {:>9} {:>10} {:>9}",
        "Circuit",
        "Depth",
        "Das dΔ",
        "Das bdry",
        "Saki dΔ",
        "Saki q(L/R)",
        "Tetris dΔ",
        "Tetris q(L/R)",
        "jagged"
    );
    println!("{}", "-".repeat(108));
    for bench in table1_benchmarks() {
        let c = bench.circuit();
        let seeds: Vec<u64> = (0..10).collect();

        // Das-style insertion with the same material budget (4 gates).
        let das_depths: Vec<f64> = seeds
            .iter()
            .map(|&s| das_random_insertion(c, 4, s).depth_overhead(c) as f64)
            .collect();
        let das = das_random_insertion(c, 4, 0);

        // Saki-style straight cut at mid-depth.
        let (saki_left, saki_right) = saki_cascade_split(c, c.depth() / 2);

        // TetrisLock.
        let mut tetris_depth_delta = Vec::new();
        let mut mismatched = 0usize;
        let mut jagged = 0usize;
        let mut sample_sizes = (0u32, 0u32);
        for &s in &seeds {
            let obf = Obfuscator::new()
                .with_config(InsertionConfig {
                    seed: s,
                    ..Default::default()
                })
                .obfuscate(c);
            tetris_depth_delta.push(obf.depth_increase() as f64);
            let split = obf.split(s + 99);
            if split.has_mismatched_qubits() {
                mismatched += 1;
            }
            if split.pattern.is_interlocking() {
                jagged += 1;
            }
            sample_sizes = (
                split.left.circuit.num_qubits(),
                split.right.circuit.num_qubits(),
            );
        }

        println!(
            "{:<12} {:>6} | {:>9.1} {:>9} | {:>9} {:>7}/{:<3} | {:>9.1} {:>8}/{:<4} {:>6}/10",
            bench.name(),
            c.depth(),
            summarize(&das_depths).mean,
            format!("L{}", das.boundary_layer()),
            0, // cascading split inserts nothing, depth unchanged
            saki_left.num_qubits(),
            saki_right.num_qubits(),
            summarize(&tetris_depth_delta).mean,
            sample_sizes.0,
            sample_sizes.1,
            jagged,
        );
        let _ = mismatched;
    }
    // Wall-clock view of the depth claim: schedule with Falcon gate
    // times and compare durations.
    println!("\nscheduled duration (ns, Falcon gate times):");
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "Circuit", "original", "Das R·C", "TetrisLock"
    );
    let times = GateTimes::falcon();
    for bench in table1_benchmarks() {
        let c = bench.circuit();
        let base = schedule(c, &times).duration_ns;
        let das = schedule(&das_random_insertion(c, 4, 0).obfuscated, &times).duration_ns;
        let obf = Obfuscator::new().with_seed(0).obfuscate(c);
        let tetris = schedule(obf.obfuscated(), &times).duration_ns;
        println!(
            "{:<12} {:>10.0} {:>11.0}{} {:>13.0}{}",
            bench.name(),
            base,
            das,
            if das > base { "+" } else { " " },
            tetris,
            if tetris > base { "+" } else { " " },
        );
    }

    println!("\nkey observations (matching §IV-C):");
    println!("  • Das insertion grows depth by depth(R) and exposes a straight boundary");
    println!("    at a fixed layer; TetrisLock's depth delta is exactly 0.");
    println!("  • Saki's cascading split yields equal qubit counts left/right — the");
    println!("    attacker can filter candidates by width. TetrisLock segments differ");
    println!("    in width and the cut is jagged on nearly every draw.");
}
