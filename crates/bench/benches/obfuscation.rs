//! Criterion bench: obfuscation + split + recombine throughput per
//! Table-I benchmark (the designer-side cost of TetrisLock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use revlib::table1_benchmarks;
use tetrislock::recombine::recombine;
use tetrislock::{InsertionConfig, Obfuscator};

fn bench_obfuscate(c: &mut Criterion) {
    let mut group = c.benchmark_group("obfuscate");
    for bench in table1_benchmarks() {
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            bench.circuit(),
            |b, circuit| {
                let obfuscator = Obfuscator::new().with_config(InsertionConfig {
                    seed: 1,
                    ..Default::default()
                });
                b.iter(|| obfuscator.obfuscate(circuit));
            },
        );
    }
    group.finish();
}

fn bench_split_recombine(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_recombine");
    for bench in table1_benchmarks() {
        let obf = Obfuscator::new().with_seed(1).obfuscate(bench.circuit());
        group.bench_with_input(BenchmarkId::from_parameter(bench.name()), &obf, |b, obf| {
            b.iter(|| {
                let split = obf.split(7);
                recombine(&split).expect("recombination is total")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obfuscate, bench_split_recombine);
criterion_main!(benches);
