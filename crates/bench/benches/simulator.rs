//! Criterion bench: simulator throughput — the substrate cost behind
//! every accuracy/TVD data point (1000-shot noisy runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::{Sampler, Statevector};
use revlib::{adder_1bit, rd53, rd84};

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for bench in [adder_1bit(), rd53(), rd84()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            bench.circuit(),
            |b, circuit| {
                b.iter(|| Statevector::from_circuit(circuit).expect("fits"));
            },
        );
    }
    group.finish();
}

fn bench_noisy_shots(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_1000_shots");
    group.sample_size(10);
    for bench in [adder_1bit(), rd53(), rd84()] {
        let device = bench::device_for(bench.circuit().num_qubits());
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            bench.circuit(),
            |b, circuit| {
                let sampler = Sampler::new(1000).with_seed(1);
                b.iter(|| sampler.run_noisy(circuit, device.noise()).expect("fits"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_statevector, bench_noisy_shots);
criterion_main!(benches);
