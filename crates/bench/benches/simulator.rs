//! Criterion bench: simulator throughput — the substrate cost behind
//! every accuracy/TVD data point (1000-shot noisy runs), plus the
//! kernel-engine groups: statevector scaling at 16/20/24/28 qubits,
//! the fused/unfused/naive comparison that makes the engine's win
//! measurable rather than claimed, and the layer-blocked vs per-op
//! sweep comparison at 20 qubits.
//!
//! The 24q and 28q scaling cases allocate multi-GiB states and take
//! tens of seconds per iteration; run this bench deliberately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::statevector::{ExecConfig, MAX_QUBITS};
use qsim::{Sampler, Statevector};
use revlib::{adder_1bit, rd53, rd84};

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for bench in [adder_1bit(), rd53(), rd84()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            bench.circuit(),
            |b, circuit| {
                b.iter(|| Statevector::from_circuit(circuit).expect("fits"));
            },
        );
    }
    group.finish();
}

fn bench_noisy_shots(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_1000_shots");
    group.sample_size(10);
    for bench in [adder_1bit(), rd53(), rd84()] {
        let device = bench::device_for(bench.circuit().num_qubits());
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            bench.circuit(),
            |b, circuit| {
                let sampler = Sampler::new(1000).with_seed(1);
                b.iter(|| sampler.run_noisy(circuit, device.noise()).expect("fits"));
            },
        );
    }
    group.finish();
}

fn bench_statevector_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_scaling");
    group.sample_size(10);
    for (n, gates) in [(16, 200), (20, 160), (24, 60), (MAX_QUBITS, 40)] {
        let circuit = bench::clifford_t_circuit(n, gates);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}q")),
            &circuit,
            |b, circuit| {
                b.iter(|| Statevector::from_circuit(circuit).expect("fits"));
            },
        );
    }
    group.finish();
}

fn bench_fused_vs_unfused(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_fusion");
    group.sample_size(10);
    let cases = [
        ("rd84", rd84().circuit().clone()),
        ("clifford_t_20q", bench::clifford_t_circuit(20, 160)),
    ];
    for (name, circuit) in &cases {
        group.bench_with_input(BenchmarkId::new("fused", name), circuit, |b, circuit| {
            b.iter(|| {
                let mut sv = Statevector::zero(circuit.num_qubits()).expect("fits");
                sv.apply_circuit_with(circuit, &ExecConfig::default())
                    .expect("fits");
                sv
            });
        });
        group.bench_with_input(BenchmarkId::new("unfused", name), circuit, |b, circuit| {
            b.iter(|| {
                let mut sv = Statevector::zero(circuit.num_qubits()).expect("fits");
                sv.apply_circuit_with(circuit, &ExecConfig::unfused())
                    .expect("fits");
                sv
            });
        });
        // The pre-engine full-scan loops: the baseline the ≥2× claim is
        // measured against.
        group.bench_with_input(
            BenchmarkId::new("naive_baseline", name),
            circuit,
            |b, circuit| {
                b.iter(|| bench::naive::from_circuit(circuit));
            },
        );
    }
    group.finish();
}

fn bench_layer_blocking(c: &mut Criterion) {
    use qsim::Blocking;
    let mut group = c.benchmark_group("statevector_layering");
    group.sample_size(10);
    // 20q sits right at LAYER_MIN_QUBITS: Auto and Force both layer,
    // Off pays one full-state sweep per kernel op, so this group
    // measures exactly what the blocked sweeps save.
    let circuit = bench::clifford_t_circuit(20, 160);
    for (name, blocking) in [("blocked", Blocking::Force), ("off", Blocking::Off)] {
        group.bench_with_input(
            BenchmarkId::new(name, "clifford_t_20q"),
            &circuit,
            |b, circuit| {
                let config = ExecConfig {
                    blocking,
                    ..ExecConfig::default()
                };
                b.iter(|| {
                    let mut sv = Statevector::zero(circuit.num_qubits()).expect("fits");
                    sv.apply_circuit_with(circuit, &config).expect("fits");
                    sv
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_noisy_shots,
    bench_statevector_scaling,
    bench_fused_vs_unfused,
    bench_layer_blocking
);
criterion_main!(benches);
