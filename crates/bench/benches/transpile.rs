//! Criterion bench: untrusted-compiler cost — transpiling whole vs split
//! circuits (split segments are smaller, so split compilation is cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcompile::Transpiler;
use qsim::Device;
use revlib::{adder_1bit, comparator_4gt13, mini_alu, mod5_4};
use tetrislock::Obfuscator;

fn bench_transpile_whole(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile_whole");
    for bench in [mini_alu(), mod5_4(), adder_1bit(), comparator_4gt13()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            bench.circuit(),
            |b, circuit| {
                let t = Transpiler::new(Device::fake_valencia());
                b.iter(|| t.transpile(circuit).expect("fits on device"));
            },
        );
    }
    group.finish();
}

fn bench_transpile_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile_split_segments");
    for bench in [mini_alu(), mod5_4(), adder_1bit()] {
        let obf = Obfuscator::new().with_seed(3).obfuscate(bench.circuit());
        let split = obf.split(5);
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &split,
            |b, split| {
                let t = Transpiler::new(Device::fake_valencia());
                b.iter(|| {
                    let l = t.transpile(&split.left.circuit).expect("fits");
                    let r = t.transpile(&split.right.circuit).expect("fits");
                    (l, r)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transpile_whole, bench_transpile_split);
criterion_main!(benches);
