//! Criterion bench: evaluating the Eq. 1 attack-complexity model across
//! register sizes (exact u128 vs log-domain paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tetrislock::attack::{tetrislock_complexity, tetrislock_complexity_log10, SegmentCensus};

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq1_exact");
    for n in [5u32, 12, 20, 27] {
        let census = SegmentCensus::uniform(n + 4, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &census, |b, census| {
            b.iter(|| tetrislock_complexity(n, census).expect("fits in u128"));
        });
    }
    group.finish();
}

fn bench_log10(c: &mut Criterion) {
    let mut group = c.benchmark_group("eq1_log10");
    for n in [20u32, 50, 100] {
        let census = SegmentCensus::uniform(n + 10, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &census, |b, census| {
            b.iter(|| tetrislock_complexity_log10(n, census));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_log10);
criterion_main!(benches);
