//! Criterion bench: the `qverify` equivalence tiers on revlib
//! round-trips.
//!
//! Measures what each tier pays to certify `recombine(split(obfuscate(C)))
//! ≡ C` — the check behind every correctness claim — and how the
//! stabilizer tableau scales where dense extraction cannot go.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcir::Circuit;
use qverify::Verifier;
use revlib::{mini_alu, rd53, rd73};
use tetrislock::recombine::recombine;
use tetrislock::Obfuscator;

/// Original + recombined round-trip pair for a benchmark circuit.
fn roundtrip_pair(circuit: &Circuit) -> (Circuit, Circuit) {
    let obf = Obfuscator::new().with_seed(11).obfuscate(circuit);
    let split = obf.split(3);
    let restored = recombine(&split).expect("recombination is total");
    (circuit.clone(), restored)
}

fn bench_tiers_on_revlib(c: &mut Criterion) {
    let mut group = c.benchmark_group("qverify_tiers");
    group.sample_size(10);
    let verifier = Verifier::new().with_trials(4).with_seed(5);
    for bench in [mini_alu(), rd53(), rd73()] {
        let pair = roundtrip_pair(bench.circuit());
        group.bench_with_input(
            BenchmarkId::new("auto", bench.name()),
            &pair,
            |b, (orig, rest)| {
                b.iter(|| verifier.check(orig, rest));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dense", bench.name()),
            &pair,
            |b, (orig, rest)| {
                b.iter(|| verifier.check_dense(orig, rest).expect("fits"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stimulus", bench.name()),
            &pair,
            |b, (orig, rest)| {
                b.iter(|| verifier.check_stimulus(orig, rest).expect("fits"));
            },
        );
    }
    group.finish();
}

/// The ZX tier on Clifford+T round-trip pairs past the statevector
/// cap — the regime where it is the *only* exact decision procedure —
/// plus the stall cost on a corrupted candidate (the price of falling
/// through to a lower tier) and the witness cost on a wrong-key
/// reversible pair (reduction + replay-confirmed basis witness).
fn bench_zx_clifford_t(c: &mut Criterion) {
    let mut group = c.benchmark_group("qverify_zx");
    group.sample_size(10);
    let verifier = Verifier::new();
    for n in [20u32, 30, 40] {
        let mut a = Circuit::new(n);
        for q in 0..n - 1 {
            a.h(q).t(q).cx(q, q + 1);
        }
        let pair = roundtrip_pair(&a);
        group.bench_with_input(BenchmarkId::new("certify", n), &pair, |b, (orig, rest)| {
            b.iter(|| {
                verifier
                    .check_zx(orig, rest)
                    .expect("round-trip miter reduces")
            });
        });
        // The corrupted restore's residue is *diagonal* (a stray T
        // prefixed to the restore, so it is not conjugated into a
        // basis-visible residue), hence no basis witness exists and the
        // tier must decline — the worst case: full reduction paid,
        // nothing decided.
        let mut corrupted = Circuit::new(n);
        corrupted.t(0);
        corrupted.compose(&pair.1).expect("same register");
        group.bench_with_input(
            BenchmarkId::new("stall", n),
            &(pair.0.clone(), corrupted),
            |b, (orig, bad)| {
                b.iter(|| assert!(verifier.check_zx(orig, bad).is_none()));
            },
        );
        // A wrong-key reversible pair at the same width: the residue is
        // basis-visible and the bit replay confirms a witness — exact
        // rejection at widths where (n ≥ 30) no simulation tier exists.
        let wrong = {
            let orig =
                qcir::random::random_reversible(&qcir::random::RandomCircuitConfig::new(n, 24, 12));
            let mut bad = orig.clone();
            bad.x(n / 2);
            (orig, bad)
        };
        group.bench_with_input(BenchmarkId::new("witness", n), &wrong, |b, (orig, bad)| {
            b.iter(|| {
                let report = verifier.check_zx(orig, bad).expect("witness confirms");
                assert!(report.verdict.is_inequivalent());
            });
        });
    }
    group.finish();
}

fn bench_tableau_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("qverify_tableau");
    let verifier = Verifier::new();
    for n in [50u32, 100, 200] {
        // A wide Clifford entangler and a syntactically different copy.
        let mut a = Circuit::new(n);
        let mut b = Circuit::new(n);
        for q in 0..n - 1 {
            a.h(q).cx(q, q + 1).s(q + 1);
            b.h(q).cx(q, q + 1).s(q + 1);
        }
        b.z(0).z(0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bch, (a, b)| {
            bch.iter(|| {
                verifier
                    .check_tableau(a, b)
                    .expect("clifford")
                    .verdict
                    .is_equivalent()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tiers_on_revlib,
    bench_zx_clifford_t,
    bench_tableau_scaling
);
criterion_main!(benches);
