//! Checkpointed, resumable protection jobs.
//!
//! A *job* runs the full TetrisLock pipeline for one input circuit:
//!
//! ```text
//! Obfuscate → Split → CompileLeft → CompileRight → Recombine → Verify → Emit → Done
//! ```
//!
//! Every stage transition is a pure function of the [`JobState`] — all
//! randomness flows from seeds stored in the [`JobConfig`] — so a job
//! killed at any instant and resumed from its last checkpoint produces
//! **bit-identical** output to an uninterrupted run. Checkpoints are
//! written through [`qcir::persist`] (versioned, checksummed, atomic)
//! with one level of rotation: the previous checkpoint survives as
//! `<id>.job.prev`, so even a checkpoint file destroyed *after* being
//! written (disk corruption, manual truncation) only costs one stage of
//! recomputation.
//!
//! The batch runner ([`crate::batch`]) drives many jobs over a worker
//! pool; this module is the single-job core and is deliberately
//! synchronous and allocation-light so its behavior is easy to replay.

use crate::insertion::{insert_random_pairs, Insertion, InsertionConfig};
use crate::interlock::SplitPair;
use crate::obfuscate::Obfuscation;
use crate::policy::GatePolicy;
use crate::recombine::recombine_compiled;
use qcir::persist::{self, PersistError};
use qcir::{Circuit, Qubit};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static CHECKPOINTS_WRITTEN: qobs::Counter = qobs::Counter::new("job.checkpoints_written");
static JOBS_RESUMED: qobs::Counter = qobs::Counter::new("job.resumed");
static CHECKPOINT_FALLBACKS: qobs::Counter = qobs::Counter::new("job.checkpoint_fallbacks");

/// Environment variable for deterministic fault injection: when set to
/// `N`, the process calls [`std::process::abort`] immediately after the
/// `N`-th successful checkpoint write (process-wide count). An abort is
/// indistinguishable from `kill -9` as far as the filesystem is
/// concerned — no destructors, no flushes — which is exactly what the
/// crash-safety test suite wants to simulate, deterministically.
pub const KILL_AFTER_CHECKPOINTS_ENV: &str = "TLK_BATCH_KILL_AFTER_CHECKPOINTS";

/// Environment variable for deterministic *panic* injection: when set
/// to a job id, every [`JobState::advance`] call for that job panics
/// before doing any work. Unlike [`KILL_AFTER_CHECKPOINTS_ENV`] the
/// process survives — this exercises the catch-unwind paths (the batch
/// `PANICKED` manifest state, the serve crash-loop quarantine) rather
/// than whole-process crash recovery.
pub const PANIC_JOB_ENV: &str = "TLK_BATCH_PANIC_JOB";

/// Process-wide count of successful checkpoint writes (drives the
/// fault-injection hook).
static CHECKPOINT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Pipeline position of a job. Stages advance strictly left to right;
/// each arrow is one [`JobState::advance`] call and one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStage {
    /// Run Algorithm 1 (random-pair insertion) on the original circuit.
    Obfuscate,
    /// Draw the interlocking pattern and split into two segments.
    Split,
    /// Compile the left segment for the target device.
    CompileLeft,
    /// Compile the right segment for the target device.
    CompileRight,
    /// Concatenate the compiled segments back onto one register.
    Recombine,
    /// Check the restored circuit against the original design.
    Verify,
    /// Write the restored circuit to the output directory.
    Emit,
    /// Terminal state; [`JobState::advance`] is a no-op here.
    Done,
}

impl JobStage {
    /// Stable lowercase name (used in spans, manifests, diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            JobStage::Obfuscate => "obfuscate",
            JobStage::Split => "split",
            JobStage::CompileLeft => "compile_left",
            JobStage::CompileRight => "compile_right",
            JobStage::Recombine => "recombine",
            JobStage::Verify => "verify",
            JobStage::Emit => "emit",
            JobStage::Done => "done",
        }
    }

    /// Number of `advance` calls a fresh job needs to reach `Done`.
    pub const COUNT: u64 = 7;
}

impl fmt::Display for JobStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-job pipeline parameters. Everything nondeterministic about a job
/// is pinned here, which is what makes checkpoints replayable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobConfig {
    /// Insertion RNG seed (Algorithm 1).
    pub seed: u64,
    /// Interlocking-pattern seed.
    pub split_seed: u64,
    /// Maximum total inserted gates (both halves).
    pub gate_limit: usize,
    /// Insertion gate policy.
    pub policy: GatePolicy,
    /// Target device spec for the untrusted compilers: `ideal`,
    /// `valencia`, or `linear:<n>`.
    pub device: String,
    /// Stimulus trials for the verification stage.
    pub trials: u64,
    /// Base seed for the verifier's stimulus tier.
    pub verify_seed: u64,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            seed: 0,
            split_seed: 1,
            gate_limit: 4,
            policy: GatePolicy::XCx,
            device: "ideal".to_string(),
            trials: 16,
            verify_seed: 1,
        }
    }
}

/// A compiled segment in the logical frame, with the map from its wires
/// back to the original register (ancillas not yet assigned — that
/// happens deterministically at recombine time, when both segments'
/// ancilla demands are known).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledSegment {
    /// The compiled circuit (logical wire `i` of the segment stays wire
    /// `i`; compiler-introduced routing wires trail).
    pub circuit: Circuit,
    /// Segment wire → original wire, covering the segment's pre-compile
    /// register only.
    pub to_original: BTreeMap<Qubit, Qubit>,
    /// Swaps the compiler inserted (reporting only).
    pub swaps_inserted: usize,
}

/// Verification outcome recorded in the checkpoint and manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobVerdict {
    /// `true` iff the restored circuit matched the original design.
    pub equivalent: bool,
    /// Name of the deciding verification tier.
    pub tier: String,
}

/// The full persisted state of one job. This is what a checkpoint file
/// contains; every field is either input, configuration, or a stage
/// product.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobState {
    /// Job identifier — the benchmark/file stem; names the checkpoint
    /// and output files.
    pub id: String,
    /// Pinned pipeline parameters.
    pub config: JobConfig,
    /// Current pipeline position.
    pub stage: JobStage,
    /// Monotone count of completed stage transitions.
    pub steps_done: u64,
    /// The original (secret) circuit `C`.
    pub original: Circuit,
    /// Product of the obfuscate stage.
    pub insertion: Option<Insertion>,
    /// Product of the split stage.
    pub split: Option<SplitPair>,
    /// Product of the compile-left stage.
    pub compiled_left: Option<CompiledSegment>,
    /// Product of the compile-right stage.
    pub compiled_right: Option<CompiledSegment>,
    /// Product of the recombine stage.
    pub restored: Option<Circuit>,
    /// Product of the verify stage.
    pub verdict: Option<JobVerdict>,
}

/// Why a job could not advance or its checkpoint could not be used.
#[derive(Debug)]
pub enum JobError {
    /// Checkpoint persistence failed (both the checkpoint and its
    /// `.prev` fallback, when reading).
    Persist {
        /// The checkpoint being read or written.
        path: PathBuf,
        /// The underlying persistence failure.
        source: PersistError,
    },
    /// A pipeline stage failed.
    Stage {
        /// The job that failed.
        id: String,
        /// The stage that failed.
        stage: JobStage,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Persist { path, source } => {
                write!(f, "checkpoint {}: {source}", path.display())
            }
            JobError::Stage { id, stage, message } => {
                write!(f, "job {id}, stage {stage}: {message}")
            }
        }
    }
}

impl std::error::Error for JobError {}

impl JobState {
    /// Creates a fresh job at the [`JobStage::Obfuscate`] stage.
    pub fn new(id: impl Into<String>, original: Circuit, config: JobConfig) -> Self {
        JobState {
            id: id.into(),
            config,
            stage: JobStage::Obfuscate,
            steps_done: 0,
            original,
            insertion: None,
            split: None,
            compiled_left: None,
            compiled_right: None,
            restored: None,
            verdict: None,
        }
    }

    /// `true` once the job has emitted its output.
    pub fn is_done(&self) -> bool {
        self.stage == JobStage::Done
    }

    /// Path of the restored-circuit output file for this job.
    pub fn output_path(&self, out_dir: &Path) -> PathBuf {
        out_dir.join(format!("{}.restored.qasm", self.id))
    }

    /// Runs exactly one stage transition. Idempotent per stage: killing
    /// the process after the checkpoint and re-running `advance` from
    /// the previous checkpoint recomputes the same products bit for bit.
    ///
    /// # Errors
    ///
    /// [`JobError::Stage`] if the stage's computation fails (compile
    /// error, recombination mismatch, unwritable output, ...).
    pub fn advance(&mut self, out_dir: &Path) -> Result<(), JobError> {
        let _span = qobs::span("job.stage")
            .attr("job", self.id.as_str())
            .attr("stage", self.stage.name())
            .attr("step", self.steps_done);
        if std::env::var(PANIC_JOB_ENV).as_deref() == Ok(self.id.as_str()) {
            panic!(
                "injected panic for job {} ({} test hook)",
                self.id, PANIC_JOB_ENV
            );
        }
        match self.stage {
            JobStage::Obfuscate => {
                let insertion = insert_random_pairs(
                    &self.original,
                    &InsertionConfig {
                        seed: self.config.seed,
                        gate_limit: self.config.gate_limit,
                        policy: self.config.policy,
                        ..Default::default()
                    },
                );
                self.insertion = Some(insertion);
                self.stage = JobStage::Split;
            }
            JobStage::Split => {
                let insertion = self.require_insertion()?.clone();
                let obf =
                    Obfuscation::from_parts(self.original.clone(), insertion, self.config.seed);
                self.split = Some(obf.split(self.config.split_seed));
                self.stage = JobStage::CompileLeft;
            }
            JobStage::CompileLeft => {
                let split = self.require_split()?;
                let segment = split.left.clone();
                self.compiled_left = Some(self.compile_segment(&segment)?);
                self.stage = JobStage::CompileRight;
            }
            JobStage::CompileRight => {
                let split = self.require_split()?;
                let segment = split.right.clone();
                self.compiled_right = Some(self.compile_segment(&segment)?);
                self.stage = JobStage::Recombine;
            }
            JobStage::Recombine => {
                self.restored = Some(self.recombine_stage()?);
                self.stage = JobStage::Verify;
            }
            JobStage::Verify => {
                self.verdict = Some(self.verify_stage()?);
                self.stage = JobStage::Emit;
            }
            JobStage::Emit => {
                self.emit_stage(out_dir)?;
                self.stage = JobStage::Done;
            }
            JobStage::Done => return Ok(()),
        }
        self.steps_done += 1;
        Ok(())
    }

    fn stage_err(&self, message: impl Into<String>) -> JobError {
        JobError::Stage {
            id: self.id.clone(),
            stage: self.stage,
            message: message.into(),
        }
    }

    fn require_insertion(&self) -> Result<&Insertion, JobError> {
        self.insertion
            .as_ref()
            .ok_or_else(|| self.stage_err("missing obfuscation product (corrupt stage order)"))
    }

    fn require_split(&self) -> Result<SplitPair, JobError> {
        self.split
            .clone()
            .ok_or_else(|| self.stage_err("missing split product (corrupt stage order)"))
    }

    /// Compiles one segment with the untrusted-compiler model and keeps
    /// its wire map back to the original register. The compiled circuit
    /// is in the logical frame: segment wire `i` stays wire `i`,
    /// routing ancillas trail.
    fn compile_segment(
        &self,
        segment: &crate::interlock::Segment,
    ) -> Result<CompiledSegment, JobError> {
        let device = device_for(&self.config.device, segment.circuit.num_qubits())
            .map_err(|e| self.stage_err(e))?;
        let result = qcompile::Transpiler::new(device)
            .transpile(&segment.circuit)
            .map_err(|e| self.stage_err(e.to_string()))?;
        let swaps = result.swaps_inserted;
        Ok(CompiledSegment {
            circuit: result.into_logical_circuit(),
            to_original: segment.inverse_map(),
            swaps_inserted: swaps,
        })
    }

    /// Concatenates the compiled segments on the original register,
    /// assigning compiler ancillas fresh wires deterministically (left
    /// segment's ancillas first, then right's).
    fn recombine_stage(&self) -> Result<Circuit, JobError> {
        let split = self.require_split()?;
        let left = self
            .compiled_left
            .clone()
            .ok_or_else(|| self.stage_err("missing compiled left segment"))?;
        let right = self
            .compiled_right
            .clone()
            .ok_or_else(|| self.stage_err("missing compiled right segment"))?;
        let mut next = split.original_qubits;
        let mut maps = [left.to_original, right.to_original];
        for (map, circuit) in maps.iter_mut().zip([&left.circuit, &right.circuit]) {
            for w in 0..circuit.num_qubits() {
                map.entry(Qubit::new(w)).or_insert_with(|| {
                    let fresh = next;
                    next += 1;
                    Qubit::new(fresh)
                });
            }
        }
        let [left_map, right_map] = maps;
        recombine_compiled(next, &left.circuit, &left_map, &right.circuit, &right_map)
            .map_err(|e| self.stage_err(e.to_string()))
    }

    /// Checks the restored circuit against the original design with the
    /// tiered verifier, padding the smaller register with identity
    /// wires (compiler ancillas must act as identity).
    fn verify_stage(&self) -> Result<JobVerdict, JobError> {
        let restored = self
            .restored
            .as_ref()
            .ok_or_else(|| self.stage_err("missing restored circuit"))?;
        let n = self.original.num_qubits().max(restored.num_qubits());
        let pad = |c: &Circuit| -> Circuit {
            let mut out = Circuit::with_name(n, c.name());
            out.compose(c).expect("padding cannot fail");
            out
        };
        let verifier = qverify::Verifier::new()
            .with_trials(self.config.trials)
            .with_seed(self.config.verify_seed);
        let report = verifier.check_report(&pad(&self.original), &pad(restored));
        match report.verdict {
            qverify::Verdict::Equivalent => Ok(JobVerdict {
                equivalent: true,
                tier: report.tier.to_string(),
            }),
            qverify::Verdict::Inequivalent { .. } => Ok(JobVerdict {
                equivalent: false,
                tier: report.tier.to_string(),
            }),
            qverify::Verdict::Inconclusive { .. } => {
                Err(self.stage_err("verification inconclusive (register beyond every tier)"))
            }
        }
    }

    /// Writes the restored circuit atomically (tmp + rename, like the
    /// checkpoints) so a crash mid-emit never leaves a torn output.
    fn emit_stage(&self, out_dir: &Path) -> Result<(), JobError> {
        let restored = self
            .restored
            .as_ref()
            .ok_or_else(|| self.stage_err("missing restored circuit"))?;
        let path = self.output_path(out_dir);
        let text = qcir::qasm::to_qasm(restored);
        let tmp = persist::tmp_path(&path);
        std::fs::write(&tmp, &text)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| self.stage_err(format!("cannot write {}: {e}", path.display())))
    }
}

/// Resolves a device spec string (`ideal`, `valencia`, `linear:<n>`)
/// for a circuit of `n` qubits.
///
/// # Errors
///
/// Returns a message for unknown specs or malformed sizes.
pub fn device_for(spec: &str, n: u32) -> Result<qsim::Device, String> {
    match spec {
        "ideal" => Ok(qsim::Device::ideal(n.max(2))),
        "valencia" => Ok(if n <= 5 {
            qsim::Device::fake_valencia()
        } else {
            qsim::Device::fake_valencia_extended(n)
        }),
        other => {
            if let Some(size) = other.strip_prefix("linear:") {
                let size: u32 = size
                    .parse()
                    .map_err(|_| format!("bad linear device size `{size}`"))?;
                if size < n {
                    return Err(format!(
                        "linear:{size} is smaller than the {n}-wire segment"
                    ));
                }
                Ok(qsim::Device::linear(size, qsim::noise::NoiseModel::ideal()))
            } else {
                Err(format!(
                    "unknown device `{other}` (expected ideal, valencia, or linear:<n>)"
                ))
            }
        }
    }
}

/// Checkpoint file for job `id` inside `jobs_dir`.
pub fn checkpoint_path(jobs_dir: &Path, id: &str) -> PathBuf {
    jobs_dir.join(format!("{id}.job"))
}

/// Rotated previous checkpoint for job `id`.
pub fn prev_checkpoint_path(jobs_dir: &Path, id: &str) -> PathBuf {
    jobs_dir.join(format!("{id}.job.prev"))
}

/// Writes `state` as the job's checkpoint, rotating the existing
/// checkpoint to `.prev` first. After this returns, the job directory
/// holds at least one complete, loadable checkpoint at all times — the
/// write itself is atomic (tmp + rename), and the rotation keeps the
/// previous generation as a fallback against post-write corruption.
///
/// When [`KILL_AFTER_CHECKPOINTS_ENV`] is set, aborts the process after
/// the configured number of successful writes (fault injection).
///
/// # Errors
///
/// [`JobError::Persist`] if rotation or the write fails.
pub fn save_checkpoint(jobs_dir: &Path, state: &JobState) -> Result<(), JobError> {
    let path = checkpoint_path(jobs_dir, &state.id);
    let prev = prev_checkpoint_path(jobs_dir, &state.id);
    if path.exists() {
        std::fs::rename(&path, &prev).map_err(|source| JobError::Persist {
            path: path.clone(),
            source: PersistError::Io {
                path: prev.clone(),
                source,
            },
        })?;
    }
    persist::save(&path, state).map_err(|source| JobError::Persist {
        path: path.clone(),
        source,
    })?;
    CHECKPOINTS_WRITTEN.incr();
    fault_injection_tick();
    Ok(())
}

/// Loads a job's checkpoint, falling back to the rotated `.prev`
/// generation if the current file is corrupt or unreadable.
///
/// Returns `Ok(None)` if neither file exists (fresh job).
///
/// # Errors
///
/// [`JobError::Persist`] carrying the *current* checkpoint's error when
/// both generations fail to load — the primary failure is the
/// diagnostic that matters.
pub fn load_checkpoint(jobs_dir: &Path, id: &str) -> Result<Option<JobState>, JobError> {
    let path = checkpoint_path(jobs_dir, id);
    let prev = prev_checkpoint_path(jobs_dir, id);
    if !path.exists() && !prev.exists() {
        return Ok(None);
    }
    let primary = persist::load::<JobState>(&path);
    match primary {
        Ok(state) => {
            JOBS_RESUMED.incr();
            Ok(Some(state))
        }
        Err(primary_err) => {
            if prev.exists() {
                if let Ok(state) = persist::load::<JobState>(&prev) {
                    CHECKPOINT_FALLBACKS.incr();
                    JOBS_RESUMED.incr();
                    qobs::event(
                        "job.checkpoint_fallback",
                        &[("job", qobs::AttrValue::from(id))],
                    );
                    return Ok(Some(state));
                }
            }
            Err(JobError::Persist {
                path,
                source: primary_err,
            })
        }
    }
}

/// Counts a checkpoint write and aborts if the fault-injection budget
/// (set via [`KILL_AFTER_CHECKPOINTS_ENV`]) is exhausted.
fn fault_injection_tick() {
    let seq = CHECKPOINT_SEQ.fetch_add(1, Ordering::SeqCst) + 1;
    if let Ok(raw) = std::env::var(KILL_AFTER_CHECKPOINTS_ENV) {
        if let Ok(limit) = raw.parse::<u64>() {
            if seq >= limit {
                // As close to `kill -9` as a process can do to itself:
                // no destructors, no flushing, no atexit handlers.
                std::process::abort();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::with_name(5, "jobtest");
        c.h(0).cx(0, 1).ccx(0, 1, 2).cx(2, 3).h(4).cx(3, 4);
        c
    }

    fn tmp_dirs(tag: &str) -> (PathBuf, PathBuf) {
        let base = std::env::temp_dir().join(format!("tlk_job_{tag}_{}", std::process::id()));
        let jobs = base.join("jobs");
        let out = base.join("out");
        std::fs::create_dir_all(&jobs).unwrap();
        std::fs::create_dir_all(&out).unwrap();
        (jobs, out)
    }

    #[test]
    fn pipeline_runs_to_done() {
        let (_jobs, out) = tmp_dirs("run");
        let mut job = JobState::new("demo", sample(), JobConfig::default());
        let mut steps = 0;
        while !job.is_done() {
            job.advance(&out).unwrap();
            steps += 1;
            assert!(steps <= JobStage::COUNT, "pipeline did not terminate");
        }
        assert_eq!(steps, JobStage::COUNT);
        assert!(job.verdict.as_ref().unwrap().equivalent);
        assert!(job.output_path(&out).exists());
    }

    #[test]
    fn resume_from_every_stage_is_bit_identical() {
        let (jobs, out) = tmp_dirs("resume");
        // Uninterrupted reference run.
        let mut reference = JobState::new("ref", sample(), JobConfig::default());
        while !reference.is_done() {
            reference.advance(&out).unwrap();
        }
        let want = std::fs::read(reference.output_path(&out)).unwrap();

        // For each prefix length k: run k stages, checkpoint, reload,
        // finish from the reloaded state, compare outputs byte for byte.
        for k in 0..JobStage::COUNT {
            let id = format!("cut{k}");
            let mut job = JobState::new(id.clone(), sample(), JobConfig::default());
            // Same id in the output file name ruins byte comparison; emit
            // under the reference id by renaming afterwards instead.
            for _ in 0..k {
                job.advance(&out).unwrap();
            }
            save_checkpoint(&jobs, &job).unwrap();
            let mut resumed = load_checkpoint(&jobs, &id).unwrap().expect("saved above");
            assert_eq!(resumed.steps_done, k);
            while !resumed.is_done() {
                resumed.advance(&out).unwrap();
            }
            let got = std::fs::read(resumed.output_path(&out)).unwrap();
            // Outputs embed the circuit name (not the job id), so the
            // bytes must match the reference exactly.
            assert_eq!(got, want, "resume after {k} stages diverged");
        }
    }

    #[test]
    fn checkpoint_rotation_keeps_previous_generation() {
        let (jobs, out) = tmp_dirs("rotate");
        let mut job = JobState::new("rot", sample(), JobConfig::default());
        save_checkpoint(&jobs, &job).unwrap();
        job.advance(&out).unwrap();
        save_checkpoint(&jobs, &job).unwrap();
        // Destroy the current checkpoint; resume must fall back.
        std::fs::write(checkpoint_path(&jobs, "rot"), b"garbage").unwrap();
        let resumed = load_checkpoint(&jobs, "rot").unwrap().unwrap();
        assert_eq!(
            resumed.steps_done, 0,
            "fallback should be the previous generation"
        );
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let (jobs, _out) = tmp_dirs("none");
        assert!(load_checkpoint(&jobs, "ghost").unwrap().is_none());
    }

    #[test]
    fn corrupt_both_generations_is_clean_error() {
        let (jobs, _out) = tmp_dirs("corrupt");
        std::fs::write(checkpoint_path(&jobs, "bad"), b"xx").unwrap();
        std::fs::write(prev_checkpoint_path(&jobs, "bad"), b"yy").unwrap();
        match load_checkpoint(&jobs, "bad") {
            Err(JobError::Persist { .. }) => {}
            other => panic!("expected Persist error, got {other:?}"),
        }
    }

    #[test]
    fn device_specs_resolve() {
        assert!(device_for("ideal", 4).is_ok());
        assert!(device_for("valencia", 4).is_ok());
        assert!(device_for("valencia", 9).is_ok());
        assert!(device_for("linear:6", 4).is_ok());
        assert!(device_for("linear:2", 4).is_err());
        assert!(device_for("quantum9000", 4).is_err());
    }
}
