//! Random gate insertion (the paper's Algorithm 1).
//!
//! Inserts a random circuit `R` *and its inverse* `R⁻¹` into empty slots
//! of the original circuit so that:
//!
//! * the obfuscated circuit computes exactly `R⁻¹·R·C = C` — each inserted
//!   gate `g` is paired with `g†` placed earlier inside the same idle
//!   window, with no gate touching those wires in between, so the pair
//!   cancels algebraically with no commutation assumptions;
//! * circuit depth is *provably unchanged*: gates only occupy idle
//!   wire-layer cells, so the layer count (and hence ASAP depth) cannot
//!   move (the paper's "0% depth increase" claim);
//! * the `R` halves sit strictly later than their `R⁻¹` partners, so the
//!   interlocking split can separate them into different segments.

use crate::policy::{DrawnGate, GatePolicy};
use crate::slots::SlotTable;
use qcir::dag::layered_instructions;
use qcir::{Circuit, Gate, Instruction, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertionConfig {
    /// Maximum *total* number of inserted gates, counting both the `R`
    /// and `R⁻¹` halves — the paper's Table I reports "a total of 1–4
    /// gates inserted". Each pair consumes 2 of this budget, so the
    /// default of 4 yields at most two pairs.
    pub gate_limit: usize,
    /// Gate pool (X/CX for arithmetic circuits, H for Grover-style).
    pub policy: GatePolicy,
    /// RNG seed (experiments average over 20 seeds).
    pub seed: u64,
    /// Restrict insertion to *leading* idle windows (wires untouched since
    /// layer 0), exactly as in the paper's `R⁻¹RC` front placement. This
    /// is the default because it is what guarantees the interlocking
    /// split can always separate `g†` from `g`: the inverse half is the
    /// first gate on its wires, so no earlier right-assigned gate can
    /// freeze those wires. When `false`, mid-circuit and trailing idle
    /// windows are fair game too — function and depth are still exactly
    /// preserved, but a pair may end up with both halves in one segment
    /// (weaker masking for that pair).
    pub leading_only: bool,
}

impl Default for InsertionConfig {
    fn default() -> Self {
        InsertionConfig {
            gate_limit: 4,
            policy: GatePolicy::XCx,
            seed: 0,
            leading_only: true,
        }
    }
}

/// One inserted `(g†, g)` pair with its placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertedPair {
    /// The forward gate `g` (part of `R`).
    pub gate: Gate,
    /// Operand wires.
    pub qubits: Vec<Qubit>,
    /// Layer of the inverse half `g†` (part of `R⁻¹`).
    pub inverse_layer: usize,
    /// Layer of the forward half `g` (strictly greater).
    pub forward_layer: usize,
    /// Instruction index of `g†` in the obfuscated circuit.
    pub inverse_index: usize,
    /// Instruction index of `g` in the obfuscated circuit.
    pub forward_index: usize,
}

/// Result of running Algorithm 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Insertion {
    /// The obfuscated circuit `R⁻¹RC` (same register, same depth as `C`).
    pub circuit: Circuit,
    /// The inserted pairs, in forward-layer order.
    pub pairs: Vec<InsertedPair>,
}

impl Insertion {
    /// Number of forward gates inserted (the paper's "gates inserted").
    pub fn inserted_count(&self) -> usize {
        self.pairs.len()
    }

    /// Total gate-count overhead (forward + inverse halves).
    pub fn gate_overhead(&self) -> usize {
        2 * self.pairs.len()
    }

    /// The masked view `R·C`: the obfuscated circuit with the `R⁻¹`
    /// halves stripped. This is what an attacker reconstructs if they
    /// isolate the right segment — and what Figure 4's "obfuscated" TVD
    /// curve measures.
    pub fn masked_circuit(&self) -> Circuit {
        let skip: std::collections::BTreeSet<usize> =
            self.pairs.iter().map(|p| p.inverse_index).collect();
        let mut out = Circuit::with_name(
            self.circuit.num_qubits(),
            format!("{}_masked", self.circuit.name()),
        );
        for (i, inst) in self.circuit.iter().enumerate() {
            if !skip.contains(&i) {
                out.push(inst.clone()).expect("same register");
            }
        }
        out
    }

    /// The random circuit `R` (forward halves only, in order) on the same
    /// register.
    pub fn r_circuit(&self) -> Circuit {
        let mut out = Circuit::with_name(self.circuit.num_qubits(), "R");
        let mut pairs = self.pairs.clone();
        pairs.sort_by_key(|p| p.forward_index);
        for p in pairs {
            out.push(Instruction::new(p.gate.clone(), p.qubits.clone()).expect("valid pair"))
                .expect("same register");
        }
        out
    }

    /// The inverse random circuit `R⁻¹` on the same register.
    pub fn r_inverse_circuit(&self) -> Circuit {
        let mut c = self.r_circuit().inverse();
        c.set_name("R_dg");
        c
    }
}

/// Runs Algorithm 1 on `circuit`.
///
/// Empty-slot discovery follows the paper (DAG → layers → per-layer
/// unused qubits); placement then picks an idle window of length ≥ 2,
/// drops `g†` in an early column and `g` in a later one, and reserves the
/// spanned cells so later insertions cannot break the cancellation.
///
/// Circuits with no idle windows (fully dense) come back unchanged with
/// zero pairs — the honest outcome under the zero-depth-overhead
/// constraint.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use tetrislock::insertion::{insert_random_pairs, InsertionConfig};
///
/// let mut c = Circuit::new(4);
/// c.h(0).cx(0, 1).cx(1, 2).cx(0, 1); // q3 idle; q2 idle until layer 2
/// let result = insert_random_pairs(&c, &InsertionConfig::default());
/// assert!(result.inserted_count() >= 1);
/// assert_eq!(result.circuit.depth(), c.depth()); // 0% depth increase
/// ```
pub fn insert_random_pairs(circuit: &Circuit, config: &InsertionConfig) -> Insertion {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let slots = SlotTable::new(circuit);
    let depth = slots.depth();
    let n = circuit.num_qubits();

    // Occupancy matrix [wire][layer]: true = used (original gate or
    // reserved by an inserted pair's span).
    let mut occupied = vec![vec![false; depth]; n as usize];
    for (q, wire_row) in occupied.iter_mut().enumerate() {
        for (layer, cell) in wire_row.iter_mut().enumerate() {
            if !slots.empty_at(layer).contains(&Qubit::new(q as u32)) {
                *cell = true;
            }
        }
    }

    // Planned insertions: (gate, wires, inv_layer, fwd_layer).
    let mut planned: Vec<(Gate, Vec<Qubit>, usize, usize)> = Vec::new();

    // A wire-column span [s, e) is free if every cell is unoccupied.
    let span_free = |occupied: &Vec<Vec<bool>>, wires: &[u32], s: usize, e: usize| {
        wires
            .iter()
            .all(|&w| (s..e).all(|l| !occupied[w as usize][l]))
    };

    // Candidate spans of length >= 2 for the given wires under the
    // leading-only restriction.
    let candidate_spans = |occupied: &Vec<Vec<bool>>, wires: &[u32]| -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut start = None;
        #[allow(clippy::needless_range_loop)] // parallel indexing across wires
        for layer in 0..depth {
            let free = wires.iter().all(|&w| !occupied[w as usize][layer]);
            match (free, start) {
                (true, None) => start = Some(layer),
                (false, Some(s)) => {
                    if layer - s >= 2 {
                        spans.push((s, layer));
                    }
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            if depth - s >= 2 {
                spans.push((s, depth));
            }
        }
        if config.leading_only {
            spans.retain(|&(s, _)| s == 0);
        }
        spans
    };

    while (planned.len() + 1) * 2 <= config.gate_limit {
        // Gather single-wire and pair candidates under current occupancy.
        let mut single_candidates: Vec<(u32, usize, usize)> = Vec::new();
        for w in 0..n {
            for (s, e) in candidate_spans(&occupied, &[w]) {
                single_candidates.push((w, s, e));
            }
        }
        let mut pair_candidates: Vec<(u32, u32, usize, usize)> = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                for (s, e) in candidate_spans(&occupied, &[a, b]) {
                    pair_candidates.push((a, b, s, e));
                }
            }
        }
        if single_candidates.is_empty() && pair_candidates.is_empty() {
            break;
        }

        let drawn = config.policy.draw(!pair_candidates.is_empty(), &mut rng);
        let (gate, wires, span) = match drawn {
            DrawnGate::TwoQubit(g) if !pair_candidates.is_empty() => {
                let &(a, b, s, e) = &pair_candidates[rng.gen_range(0..pair_candidates.len())];
                (g, vec![a, b], (s, e))
            }
            DrawnGate::TwoQubit(_) | DrawnGate::Single(_) if single_candidates.is_empty() => {
                // Policy wanted a single but none fit; fall back to a pair.
                let &(a, b, s, e) = &pair_candidates[rng.gen_range(0..pair_candidates.len())];
                (Gate::CX, vec![a, b], (s, e))
            }
            DrawnGate::Single(g) => {
                let &(w, s, e) = &single_candidates[rng.gen_range(0..single_candidates.len())];
                (g, vec![w], (s, e))
            }
            DrawnGate::TwoQubit(g) => {
                // Unreachable (guarded above) but harmless.
                let &(a, b, s, e) = &pair_candidates[rng.gen_range(0..pair_candidates.len())];
                (g, vec![a, b], (s, e))
            }
        };

        let (s, e) = span;
        debug_assert!(span_free(&occupied, &wires, s, e));
        // Place g† in the first half of the span, g in the second half.
        let first_half = ((e - s) / 2).max(1);
        let inv_layer = rng.gen_range(s..s + first_half).min(e - 2);
        let fwd_layer = rng.gen_range(inv_layer + 1..e);
        // Reserve the *entire* span so no later pair shares it: two pairs
        // in one window would make their cut-column constraints collide
        // and could strand a pair unseparated by the split.
        for &w in &wires {
            for cell in &mut occupied[w as usize][s..e] {
                *cell = true;
            }
        }
        planned.push((
            gate,
            wires.into_iter().map(Qubit::new).collect(),
            inv_layer,
            fwd_layer,
        ));
    }

    // Rebuild the circuit layer by layer with insertions in place.
    let layers = layered_instructions(circuit);
    let mut out = Circuit::with_name(n, circuit.name());
    // (planned_index, is_forward) keyed by layer.
    let mut by_layer: Vec<Vec<(usize, bool)>> = vec![Vec::new(); depth];
    for (pi, (_, _, inv_l, fwd_l)) in planned.iter().enumerate() {
        by_layer[*inv_l].push((pi, false));
        by_layer[*fwd_l].push((pi, true));
    }

    let mut inv_indices = vec![usize::MAX; planned.len()];
    let mut fwd_indices = vec![usize::MAX; planned.len()];
    for (layer_idx, layer) in layers.into_iter().enumerate() {
        // Inserted inverse halves first within the layer (wire-disjoint
        // from everything else in the layer, so order is cosmetic).
        for &(pi, forward) in &by_layer[layer_idx] {
            let (gate, qubits, _, _) = &planned[pi];
            let inst = Instruction::new(
                if forward {
                    gate.clone()
                } else {
                    gate.adjoint()
                },
                qubits.clone(),
            )
            .expect("planned instruction valid");
            let index = out.gate_count();
            out.push(inst).expect("same register");
            if forward {
                fwd_indices[pi] = index;
            } else {
                inv_indices[pi] = index;
            }
        }
        for inst in layer {
            out.push(inst).expect("same register");
        }
    }

    // Record the pairs with their *actual* ASAP layers in the rebuilt
    // circuit: ASAP re-layering can schedule an inserted gate earlier
    // than its planned column (its wires may be idle even earlier), and
    // the interlocking split reasons in ASAP layers.
    let out_dag = qcir::CircuitDag::new(&out);
    let mut pairs: Vec<InsertedPair> = planned
        .into_iter()
        .enumerate()
        .map(|(pi, (gate, qubits, _, _))| InsertedPair {
            gate,
            qubits,
            inverse_layer: out_dag.layer_of(inv_indices[pi]),
            forward_layer: out_dag.layer_of(fwd_indices[pi]),
            inverse_index: inv_indices[pi],
            forward_index: fwd_indices[pi],
        })
        .collect();
    pairs.sort_by_key(|p| p.forward_layer);

    debug_assert_eq!(out.depth(), circuit.depth().max(out.depth().min(depth)));
    Insertion {
        circuit: out,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::unitary::equivalent_up_to_phase;

    fn roomy_circuit() -> Circuit {
        // 5 wires, q3/q4 idle for a while.
        let mut c = Circuit::with_name(5, "roomy");
        c.h(0).cx(0, 1).cx(1, 2).ccx(0, 1, 2).cx(2, 3).cx(3, 4);
        c
    }

    #[test]
    fn depth_is_never_increased() {
        for seed in 0..20 {
            let c = roomy_circuit();
            let config = InsertionConfig {
                seed,
                ..Default::default()
            };
            let result = insert_random_pairs(&c, &config);
            assert_eq!(result.circuit.depth(), c.depth(), "seed {seed}");
        }
    }

    #[test]
    fn function_is_exactly_preserved() {
        for seed in 0..10 {
            let c = roomy_circuit();
            let config = InsertionConfig {
                seed,
                ..Default::default()
            };
            let result = insert_random_pairs(&c, &config);
            assert!(
                equivalent_up_to_phase(&c, &result.circuit, 1e-9).unwrap(),
                "seed {seed} broke the unitary"
            );
        }
    }

    #[test]
    fn respects_gate_limit() {
        let c = roomy_circuit();
        for limit in 0..=8 {
            let config = InsertionConfig {
                gate_limit: limit,
                seed: 7,
                ..Default::default()
            };
            let result = insert_random_pairs(&c, &config);
            // gate_limit counts total inserted gates (both halves).
            assert!(result.gate_overhead() <= limit);
            assert_eq!(result.gate_overhead(), 2 * result.inserted_count());
        }
    }

    #[test]
    fn inserts_at_least_one_gate_when_room_exists() {
        let c = roomy_circuit();
        let result = insert_random_pairs(&c, &InsertionConfig::default());
        assert!(result.inserted_count() >= 1);
        assert!(result.circuit.gate_count() == c.gate_count() + result.gate_overhead());
    }

    #[test]
    fn dense_circuit_gets_no_insertion() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1).cx(0, 1);
        let result = insert_random_pairs(&c, &InsertionConfig::default());
        assert_eq!(result.inserted_count(), 0);
        assert_eq!(result.circuit.instructions(), c.instructions());
    }

    #[test]
    fn masked_circuit_drops_only_inverse_halves() {
        let c = roomy_circuit();
        let result = insert_random_pairs(
            &c,
            &InsertionConfig {
                seed: 3,
                ..Default::default()
            },
        );
        let masked = result.masked_circuit();
        assert_eq!(
            masked.gate_count(),
            result.circuit.gate_count() - result.inserted_count()
        );
    }

    #[test]
    fn masked_circuit_changes_function_when_x_inserted() {
        // With X/CX insertions on leading windows the masked circuit RC
        // must differ from C (the random gates actually fire).
        let mut found_difference = false;
        for seed in 0..20 {
            let c = roomy_circuit();
            let result = insert_random_pairs(
                &c,
                &InsertionConfig {
                    seed,
                    ..Default::default()
                },
            );
            if result.inserted_count() == 0 {
                continue;
            }
            let masked = result.masked_circuit();
            if !equivalent_up_to_phase(&c, &masked, 1e-9).unwrap() {
                found_difference = true;
                break;
            }
        }
        assert!(found_difference, "masking never changed the function");
    }

    #[test]
    fn pairs_record_valid_indices() {
        let c = roomy_circuit();
        let result = insert_random_pairs(
            &c,
            &InsertionConfig {
                seed: 5,
                ..Default::default()
            },
        );
        for p in &result.pairs {
            assert!(p.inverse_layer < p.forward_layer);
            let inv = &result.circuit.instructions()[p.inverse_index];
            let fwd = &result.circuit.instructions()[p.forward_index];
            assert_eq!(fwd.gate(), &p.gate);
            assert_eq!(inv.gate(), &p.gate.adjoint());
            assert_eq!(inv.qubits(), p.qubits.as_slice());
            assert!(p.inverse_index < p.forward_index);
        }
    }

    #[test]
    fn r_and_r_inverse_compose_to_identity() {
        let c = roomy_circuit();
        let result = insert_random_pairs(
            &c,
            &InsertionConfig {
                seed: 11,
                ..Default::default()
            },
        );
        if result.inserted_count() == 0 {
            return;
        }
        let r = result.r_circuit();
        let r_inv = result.r_inverse_circuit();
        let composed = r_inv.then(&r).unwrap();
        // R⁻¹ then R — wait: the circuit is R⁻¹·R·C in *time* order, i.e.
        // R⁻¹ acts first. R⁻¹ followed by R is identity.
        let id = Circuit::new(c.num_qubits());
        assert!(equivalent_up_to_phase(&composed, &id, 1e-9).unwrap());
    }

    #[test]
    fn seeds_give_different_insertions() {
        let c = roomy_circuit();
        let a = insert_random_pairs(
            &c,
            &InsertionConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let b = insert_random_pairs(
            &c,
            &InsertionConfig {
                seed: 2,
                ..Default::default()
            },
        );
        assert!(
            a.circuit.instructions() != b.circuit.instructions()
                || a.pairs != b.pairs
                || a.inserted_count() == 0
        );
    }

    #[test]
    fn same_seed_reproduces() {
        let c = roomy_circuit();
        let cfg = InsertionConfig {
            seed: 9,
            ..Default::default()
        };
        let a = insert_random_pairs(&c, &cfg);
        let b = insert_random_pairs(&c, &cfg);
        assert_eq!(a.circuit.instructions(), b.circuit.instructions());
    }

    #[test]
    fn hadamard_policy_inserts_h_pairs() {
        let c = roomy_circuit();
        let cfg = InsertionConfig {
            policy: GatePolicy::Hadamard,
            seed: 4,
            ..Default::default()
        };
        let result = insert_random_pairs(&c, &cfg);
        for p in &result.pairs {
            assert_eq!(p.gate, Gate::H);
        }
        assert!(equivalent_up_to_phase(&c, &result.circuit, 1e-9).unwrap());
    }

    #[test]
    fn leading_only_restricts_spans() {
        let c = roomy_circuit();
        let cfg = InsertionConfig {
            leading_only: true,
            seed: 6,
            ..Default::default()
        };
        let result = insert_random_pairs(&c, &cfg);
        let slots = SlotTable::new(&c);
        for p in &result.pairs {
            for q in &p.qubits {
                // Every wire used must be idle from layer 0 through the
                // forward layer in the original circuit.
                let leading = slots
                    .windows_for(*q)
                    .iter()
                    .find(|w| w.is_leading())
                    .expect("pair wire must have a leading window");
                assert!(p.forward_layer < leading.end);
            }
        }
    }
}
