//! Retry/backoff policy and crash-loop circuit breaker for the serve
//! daemon.
//!
//! Everything here is deliberately *deterministic*: the backoff jitter
//! is derived from a caller-supplied seed via splitmix64, never from
//! the clock or ambient entropy, so a failing serve run replays its
//! exact retry schedule under the same seed. The schedule is also
//! provably well-behaved:
//!
//! - **bounded**: every delay is `<= max_delay_ms`;
//! - **monotone**: delays never shrink from one attempt to the next
//!   (jitter only shaves *downward* from a doubling backbone, and
//!   `0.75 * 2b > b` keeps the shaved values ordered);
//! - **capped exactly**: once the doubling backbone reaches the cap,
//!   the delay is exactly `max_delay_ms` with no jitter.
//!
//! The [`CircuitBreaker`] is the crash-loop guard: `N` consecutive
//! failures open it (the serve worker quarantines the job at that
//! point); a successful probe closes it again and resets the strike
//! count.

/// Default number of consecutive failures (strikes) before the breaker
/// opens and the job is quarantined.
pub const DEFAULT_MAX_STRIKES: u32 = 3;

/// Default first-retry backoff in milliseconds.
pub const DEFAULT_BASE_DELAY_MS: u64 = 50;

/// Default backoff ceiling in milliseconds.
pub const DEFAULT_MAX_DELAY_MS: u64 = 2_000;

/// Bounded exponential backoff with deterministic seeded jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive failures tolerated before quarantine.
    pub max_strikes: u32,
    /// Backoff for the first retry (doubles per attempt).
    pub base_delay_ms: u64,
    /// Hard ceiling on any single backoff delay.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_strikes: DEFAULT_MAX_STRIKES,
            base_delay_ms: DEFAULT_BASE_DELAY_MS,
            max_delay_ms: DEFAULT_MAX_DELAY_MS,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `attempt` (0-based), in milliseconds.
    ///
    /// The backbone is `base * 2^attempt`, saturating at
    /// `max_delay_ms`. Below the cap, seeded jitter shaves up to 25%
    /// off the backbone; at the cap the delay is exactly
    /// `max_delay_ms`. Same `(policy, seed, attempt)` always yields the
    /// same delay.
    pub fn delay_ms(&self, seed: u64, attempt: u32) -> u64 {
        // saturating_mul, not checked_shl: shifts only guard the shift
        // *amount*, silently truncating overflowed value bits.
        let backbone = if attempt >= 63 {
            self.max_delay_ms
        } else {
            self.base_delay_ms
                .saturating_mul(1u64 << attempt)
                .min(self.max_delay_ms)
        };
        if backbone >= self.max_delay_ms {
            return self.max_delay_ms;
        }
        // frac in [0, 1): 53 uniform bits of the mixed seed.
        let mixed = splitmix64(seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let frac = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        let shave = ((backbone / 4) as f64 * frac) as u64;
        backbone - shave
    }

    /// The first `n` delays for `seed`, as one vector (for logging,
    /// reports, and the proptest suite).
    pub fn schedule(&self, seed: u64, n: u32) -> Vec<u64> {
        (0..n).map(|k| self.delay_ms(seed, k)).collect()
    }
}

/// splitmix64: a tiny, well-distributed 64-bit mixer. Used only to
/// derive jitter fractions from a seed — never from the clock.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Breaker position. `Closed` passes work through, `Open` means the
/// strike budget is spent (serve quarantines at this point), `HalfOpen`
/// lets exactly one probe attempt through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures accumulate strikes.
    Closed,
    /// Strike budget exhausted — no more attempts until a probe.
    Open,
    /// One probe attempt is in flight; its outcome decides the state.
    HalfOpen,
}

/// Crash-loop circuit breaker: opens after exactly `max_strikes`
/// consecutive failures, re-closes after a successful probe.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    max_strikes: u32,
    strikes: u32,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed breaker tolerating `max_strikes` consecutive failures
    /// (clamped to at least 1).
    pub fn new(max_strikes: u32) -> Self {
        CircuitBreaker {
            max_strikes: max_strikes.max(1),
            strikes: 0,
            state: BreakerState::Closed,
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Consecutive failures since the last success.
    pub fn strikes(&self) -> u32 {
        self.strikes
    }

    /// `true` once the strike budget is spent.
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Records a failed attempt. A failure while half-open re-opens
    /// immediately; otherwise the breaker opens once `strikes` reaches
    /// `max_strikes`. Returns the new state.
    pub fn record_failure(&mut self) -> BreakerState {
        self.strikes = self.strikes.saturating_add(1);
        if self.state == BreakerState::HalfOpen || self.strikes >= self.max_strikes {
            self.state = BreakerState::Open;
        }
        self.state
    }

    /// Records a successful attempt (including a successful half-open
    /// probe): the breaker closes and the strike count resets.
    pub fn record_success(&mut self) {
        self.strikes = 0;
        self.state = BreakerState::Closed;
    }

    /// Asks to send a probe. From `Open` this transitions to `HalfOpen`
    /// and returns `true` (send exactly one attempt); from `Closed` it
    /// returns `true` without a transition; from `HalfOpen` it returns
    /// `false` (a probe is already outstanding).
    pub fn probe(&mut self) -> bool {
        match self.state {
            BreakerState::Open => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::HalfOpen => false,
            BreakerState::Closed => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        assert_eq!(p.schedule(7, 10), p.schedule(7, 10));
        // Different seeds jitter differently somewhere below the cap.
        assert_ne!(p.schedule(1, 6), p.schedule(2, 6));
    }

    #[test]
    fn schedule_is_monotone_and_bounded() {
        let p = RetryPolicy {
            max_strikes: 3,
            base_delay_ms: 10,
            max_delay_ms: 500,
        };
        for seed in 0..50u64 {
            let s = p.schedule(seed, 12);
            for w in s.windows(2) {
                assert!(w[0] <= w[1], "seed {seed}: schedule not monotone: {s:?}");
            }
            assert!(s.iter().all(|&d| d <= p.max_delay_ms), "{s:?}");
            assert_eq!(*s.last().unwrap(), p.max_delay_ms, "cap reached exactly");
        }
    }

    #[test]
    fn huge_attempt_counts_saturate_at_cap() {
        let p = RetryPolicy::default();
        assert_eq!(p.delay_ms(3, 200), p.max_delay_ms);
    }

    #[test]
    fn breaker_opens_after_exactly_n_strikes() {
        let mut b = CircuitBreaker::new(3);
        assert_eq!(b.record_failure(), BreakerState::Closed);
        assert_eq!(b.record_failure(), BreakerState::Closed);
        assert_eq!(b.record_failure(), BreakerState::Open);
        assert!(b.is_open());
        assert_eq!(b.strikes(), 3);
    }

    #[test]
    fn probe_then_success_recloses() {
        let mut b = CircuitBreaker::new(1);
        b.record_failure();
        assert!(b.is_open());
        assert!(b.probe());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.probe(), "only one probe may be outstanding");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.strikes(), 0);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let mut b = CircuitBreaker::new(5);
        for _ in 0..5 {
            b.record_failure();
        }
        assert!(b.probe());
        assert_eq!(b.record_failure(), BreakerState::Open);
    }
}
