//! Multi-segment interlocking splits.
//!
//! §IV of the paper: "the circuit can be divided into two *or more*
//! sub-circuits, which are then compiled separately using different
//! quantum compilers". This module generalizes the two-way
//! [`crate::interlock`] split to `k` segments: each wire gets `k−1`
//! ascending cut columns, gates are assigned to the earliest segment all
//! their wires still allow (with the same freezing rule that keeps every
//! segment a per-wire *interval*), and recombination concatenates the
//! segments in order.
//!
//! Pair separation generalizes too: for every inserted pair the segment
//! of `g†` is strictly earlier than the segment of `g`, so no single
//! compiler can cancel the masking.

use crate::error::LockError;
use crate::interlock::Segment;
use crate::obfuscate::Obfuscation;
use qcir::{Circuit, CircuitDag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A per-wire staircase of cut columns: `cuts[w]` holds `k−1` ascending
/// layer indices; gate layers `< cuts[w][0]` are segment 0, layers in
/// `[cuts[w][0], cuts[w][1])` segment 1, and so on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiwayPattern {
    segments: usize,
    cuts: Vec<Vec<usize>>,
}

impl MultiwayPattern {
    /// Creates a pattern from explicit per-wire cut staircases.
    ///
    /// # Panics
    ///
    /// Panics if `segments < 2`, a wire has the wrong number of cuts, or
    /// a staircase is not non-decreasing.
    pub fn new(segments: usize, cuts: Vec<Vec<usize>>) -> Self {
        assert!(segments >= 2, "need at least two segments");
        for wire_cuts in &cuts {
            assert_eq!(wire_cuts.len(), segments - 1, "one cut per boundary");
            assert!(
                wire_cuts.windows(2).all(|w| w[0] <= w[1]),
                "cuts must be non-decreasing"
            );
        }
        MultiwayPattern { segments, cuts }
    }

    /// Number of segments this pattern produces.
    pub fn num_segments(&self) -> usize {
        self.segments
    }

    /// The cut staircase of each wire.
    pub fn cuts(&self) -> &[Vec<usize>] {
        &self.cuts
    }

    /// Draws a random `k`-way pattern for `obfuscation`, constraining the
    /// *first* boundary on every pair's wires to separate `g†` from `g`
    /// (the later boundaries fall anywhere at or after the first).
    pub fn random_for(obfuscation: &Obfuscation, segments: usize, seed: u64) -> Self {
        assert!(segments >= 2, "need at least two segments");
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = obfuscation.obfuscated();
        let depth = circuit.depth();
        let n = circuit.num_qubits() as usize;

        let mut lo = vec![0usize; n];
        let mut hi = vec![depth; n];
        for pair in &obfuscation.insertion().pairs {
            for q in &pair.qubits {
                let i = q.index();
                lo[i] = lo[i].max(pair.inverse_layer + 1);
                hi[i] = hi[i].min(pair.forward_layer);
            }
        }

        let cuts: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let first = if lo[i] > hi[i] {
                    lo[i]
                } else {
                    let lo_i = lo[i].max(1).min(hi[i]);
                    rng.gen_range(lo_i..=hi[i])
                };
                let mut staircase = vec![first];
                for _ in 1..segments - 1 {
                    let prev = *staircase.last().expect("nonempty");
                    staircase.push(rng.gen_range(prev..=depth));
                }
                staircase
            })
            .collect();
        MultiwayPattern { segments, cuts }
    }

    /// Segment index of a gate at `layer` on wire `w` (before freezing).
    fn segment_of(&self, wire: usize, layer: usize) -> usize {
        self.cuts[wire]
            .iter()
            .position(|&c| layer < c)
            .unwrap_or(self.segments - 1)
    }

    /// Splits the obfuscated circuit into `k` segments.
    ///
    /// Assignment: a gate's tentative segment is the maximum over its
    /// wires of `segment_of(wire, layer)` and of each wire's *floor* (the
    /// latest segment that wire has already emitted into); the floor then
    /// rises to that segment. This keeps every wire's gates grouped into
    /// ascending segment intervals, so concatenating the segments in
    /// order is a valid topological reordering.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's wire count mismatches the circuit.
    pub fn split(&self, obfuscation: &Obfuscation) -> MultiwaySplit {
        let circuit = obfuscation.obfuscated();
        let _span = qobs::span("core.split_multiway")
            .attr("circuit", circuit.name().to_string())
            .attr("wires", circuit.num_qubits())
            .attr("gates", circuit.gate_count())
            .attr("segments", self.segments);
        assert_eq!(
            self.cuts.len(),
            circuit.num_qubits() as usize,
            "pattern covers a different register"
        );
        let dag = CircuitDag::new(circuit);
        let n = circuit.num_qubits();

        let mut floor = vec![0usize; n as usize];
        let mut parts: Vec<Circuit> = (0..self.segments)
            .map(|i| Circuit::with_name(n, format!("{}_part{}", circuit.name(), i)))
            .collect();
        let mut assignment = Vec::with_capacity(circuit.gate_count());
        for (idx, inst) in circuit.iter().enumerate() {
            let layer = dag.layer_of(idx);
            let seg = inst
                .qubits()
                .iter()
                .map(|q| self.segment_of(q.index(), layer).max(floor[q.index()]))
                .max()
                .expect("instructions have operands");
            for q in inst.qubits() {
                floor[q.index()] = floor[q.index()].max(seg);
            }
            parts[seg].push(inst.clone()).expect("same register");
            assignment.push(seg);
        }

        let segments = parts
            .into_iter()
            .map(|part| {
                let (circuit, wire_map) = match part.compacted() {
                    Ok(pair) => pair,
                    Err(_) => (Circuit::with_name(1, part.name()), BTreeMap::new()),
                };
                Segment { circuit, wire_map }
            })
            .collect();
        MultiwaySplit {
            segments,
            pattern: self.clone(),
            original_qubits: n,
            assignment,
        }
    }
}

/// A completed `k`-way split.
#[derive(Debug, Clone)]
pub struct MultiwaySplit {
    /// The segments in execution order.
    pub segments: Vec<Segment>,
    /// The pattern that produced them.
    pub pattern: MultiwayPattern,
    /// Register size of the source circuit.
    pub original_qubits: u32,
    /// Segment index of each obfuscated-circuit instruction, in program
    /// order (useful for auditing pair separation).
    pub assignment: Vec<usize>,
}

impl MultiwaySplit {
    /// Distinct qubit counts across the segments — more distinct sizes
    /// means a harder census for colluding compilers.
    pub fn distinct_widths(&self) -> usize {
        let mut widths: Vec<u32> = self
            .segments
            .iter()
            .filter(|s| !s.circuit.is_empty())
            .map(|s| s.circuit.num_qubits())
            .collect();
        widths.sort_unstable();
        widths.dedup();
        widths.len()
    }

    /// Recombines the segments in order back onto the original register.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::Recombine`] on incomplete wire maps.
    pub fn recombine(&self) -> Result<Circuit, LockError> {
        let _span = qobs::span("core.recombine_multiway")
            .attr("wires", self.original_qubits)
            .attr("segments", self.segments.len());
        let mut out = Circuit::with_name(self.original_qubits, "recombined_multiway");
        for segment in &self.segments {
            let inverse = segment.inverse_map();
            for inst in segment.circuit.iter() {
                let mapped = inst
                    .remapped(&inverse)
                    .map_err(|e| LockError::Recombine(e.to_string()))?;
                out.push(mapped)
                    .map_err(|e| LockError::Recombine(e.to_string()))?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscate::Obfuscator;
    use qsim::unitary::equivalent_up_to_phase;

    fn sample() -> Circuit {
        let mut c = Circuit::with_name(6, "multi");
        c.h(0)
            .cx(0, 1)
            .x(1)
            .cx(1, 2)
            .h(2)
            .cx(2, 3)
            .cx(3, 4)
            .x(3)
            .cx(4, 5)
            .h(5);
        c
    }

    #[test]
    fn three_way_recombination_is_exact() {
        for seed in 0..10 {
            let c = sample();
            let obf = Obfuscator::new().with_seed(seed).obfuscate(&c);
            let pattern = MultiwayPattern::random_for(&obf, 3, seed + 50);
            let split = pattern.split(&obf);
            assert_eq!(split.segments.len(), 3);
            let restored = split.recombine().unwrap();
            assert!(
                equivalent_up_to_phase(&c, &restored, 1e-9).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn four_way_recombination_is_exact() {
        let c = sample();
        let obf = Obfuscator::new().with_seed(3).obfuscate(&c);
        let pattern = MultiwayPattern::random_for(&obf, 4, 9);
        let split = pattern.split(&obf);
        let restored = split.recombine().unwrap();
        assert!(equivalent_up_to_phase(&c, &restored, 1e-9).unwrap());
    }

    #[test]
    fn gates_partition_across_segments() {
        let c = sample();
        let obf = Obfuscator::new().with_seed(1).obfuscate(&c);
        let pattern = MultiwayPattern::random_for(&obf, 3, 2);
        let split = pattern.split(&obf);
        let total: usize = split.segments.iter().map(|s| s.circuit.gate_count()).sum();
        assert_eq!(total, obf.obfuscated().gate_count());
    }

    #[test]
    fn pair_halves_in_strictly_ascending_segments() {
        for seed in 0..10 {
            let c = sample();
            let obf = Obfuscator::new().with_seed(seed).obfuscate(&c);
            let pattern = MultiwayPattern::random_for(&obf, 3, seed);
            let split = pattern.split(&obf);
            for pair in &obf.insertion().pairs {
                let si = split.assignment[pair.inverse_index];
                let sf = split.assignment[pair.forward_index];
                assert!(
                    si < sf,
                    "seed {seed}: pair {:?} not separated ({si} vs {sf})",
                    pair.gate
                );
            }
        }
    }

    #[test]
    fn two_way_multiway_matches_interlock_semantics() {
        let c = sample();
        let obf = Obfuscator::new().with_seed(4).obfuscate(&c);
        let pattern = MultiwayPattern::random_for(&obf, 2, 6);
        let split = pattern.split(&obf);
        assert_eq!(split.segments.len(), 2);
        let restored = split.recombine().unwrap();
        assert!(equivalent_up_to_phase(&c, &restored, 1e-9).unwrap());
    }

    #[test]
    fn pattern_validation() {
        // Wrong cut count.
        let result = std::panic::catch_unwind(|| MultiwayPattern::new(3, vec![vec![1]; 2]));
        assert!(result.is_err());
        // Decreasing staircase.
        let result = std::panic::catch_unwind(|| MultiwayPattern::new(3, vec![vec![3, 1]; 2]));
        assert!(result.is_err());
        // Valid.
        let p = MultiwayPattern::new(3, vec![vec![1, 2]; 2]);
        assert_eq!(p.num_segments(), 3);
    }

    #[test]
    fn distinct_widths_counted() {
        let c = sample();
        let obf = Obfuscator::new().with_seed(8).obfuscate(&c);
        let pattern = MultiwayPattern::random_for(&obf, 3, 12);
        let split = pattern.split(&obf);
        assert!(split.distinct_widths() >= 1);
    }
}
