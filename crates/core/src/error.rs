//! TetrisLock error types.

use std::fmt;

/// Errors raised by the obfuscation/de-obfuscation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// Recombination failed (incomplete wire map, register overflow, …).
    Recombine(String),
    /// An attack-complexity computation overflowed the exact integer
    /// domain; use the log-domain API instead.
    ComplexityOverflow {
        /// Qubit count that overflowed.
        qubits: u32,
    },
    /// Invalid configuration (e.g. zero shots, empty split).
    InvalidConfig(String),
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Recombine(message) => write!(f, "recombination failed: {message}"),
            LockError::ComplexityOverflow { qubits } => write!(
                f,
                "attack complexity for {qubits} qubits overflows u128; use the log10 API"
            ),
            LockError::InvalidConfig(message) => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for LockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(LockError::Recombine("x".into()).to_string().contains("x"));
        assert!(LockError::ComplexityOverflow { qubits: 40 }
            .to_string()
            .contains("40"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<LockError>();
    }
}
