//! Insertion gate policies.
//!
//! §V-A of the paper: "we strategically selected gate types for insertion
//! based on the operations present in the benchmarks" — X/CX for
//! arithmetic RevLib circuits, Hadamard for Grover-style circuits.

use qcir::Gate;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which random gates Algorithm 1 draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GatePolicy {
    /// NOT / CNOT gates — camouflages arithmetic circuits (adders, ALUs,
    /// counters, comparators). The paper's default for RevLib.
    #[default]
    XCx,
    /// Hadamard gates — camouflages superposition-heavy circuits such as
    /// Grover's algorithm.
    Hadamard,
    /// Mixed pool (X, CX, H) — extension beyond the paper for ablation.
    Mixed,
}

/// A gate chosen by the policy, before wire assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum DrawnGate {
    /// A single-qubit insertion.
    Single(Gate),
    /// A CX insertion (needs two idle wires).
    TwoQubit(Gate),
}

impl GatePolicy {
    /// Draws a random gate kind. `pair_possible` tells the policy whether
    /// a two-qubit slot is currently available; when it is, CX is chosen
    /// with probability 1/2 (Algorithm 1's `Random(0,1) < 0.5` branch).
    pub fn draw<R: Rng + ?Sized>(&self, pair_possible: bool, rng: &mut R) -> DrawnGate {
        match self {
            GatePolicy::XCx => {
                if pair_possible && rng.gen::<f64>() < 0.5 {
                    DrawnGate::TwoQubit(Gate::CX)
                } else {
                    DrawnGate::Single(Gate::X)
                }
            }
            GatePolicy::Hadamard => DrawnGate::Single(Gate::H),
            GatePolicy::Mixed => {
                if pair_possible && rng.gen::<f64>() < 0.4 {
                    DrawnGate::TwoQubit(Gate::CX)
                } else if rng.gen::<f64>() < 0.5 {
                    DrawnGate::Single(Gate::X)
                } else {
                    DrawnGate::Single(Gate::H)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xcx_draws_both_kinds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_x = false;
        let mut saw_cx = false;
        for _ in 0..100 {
            match GatePolicy::XCx.draw(true, &mut rng) {
                DrawnGate::Single(Gate::X) => saw_x = true,
                DrawnGate::TwoQubit(Gate::CX) => saw_cx = true,
                other => panic!("unexpected draw {other:?}"),
            }
        }
        assert!(saw_x && saw_cx);
    }

    #[test]
    fn xcx_without_pairs_only_draws_x() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            assert_eq!(
                GatePolicy::XCx.draw(false, &mut rng),
                DrawnGate::Single(Gate::X)
            );
        }
    }

    #[test]
    fn hadamard_policy_is_h_only() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(
                GatePolicy::Hadamard.draw(true, &mut rng),
                DrawnGate::Single(Gate::H)
            );
        }
    }

    #[test]
    fn mixed_policy_draws_h() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut saw_h = false;
        for _ in 0..200 {
            if GatePolicy::Mixed.draw(true, &mut rng) == DrawnGate::Single(Gate::H) {
                saw_h = true;
            }
        }
        assert!(saw_h);
    }
}
