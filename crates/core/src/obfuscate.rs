//! The top-level obfuscation API.

use crate::insertion::{insert_random_pairs, Insertion, InsertionConfig};
use crate::interlock::{InterlockPattern, SplitPair};
use qcir::Circuit;

/// TetrisLock obfuscator: random-pair insertion plus interlocking split.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use tetrislock::Obfuscator;
///
/// let mut c = Circuit::new(4);
/// c.h(0).cx(0, 1).cx(1, 2).cx(0, 1);
/// let obf = Obfuscator::new().with_seed(42).obfuscate(&c);
/// assert_eq!(obf.obfuscated().depth(), c.depth()); // 0% depth overhead
/// let split = obf.split(7);
/// // Neither segment alone is the original circuit.
/// assert!(split.left.circuit.gate_count() < obf.obfuscated().gate_count());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Obfuscator {
    config: InsertionConfig,
}

impl Obfuscator {
    /// Creates an obfuscator with the default configuration (gate limit 4,
    /// X/CX policy).
    pub fn new() -> Self {
        Obfuscator::default()
    }

    /// Replaces the whole insertion configuration.
    pub fn with_config(mut self, config: InsertionConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the maximum number of inserted forward gates.
    pub fn with_gate_limit(mut self, limit: usize) -> Self {
        self.config.gate_limit = limit;
        self
    }

    /// Sets the gate policy.
    pub fn with_policy(mut self, policy: crate::policy::GatePolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &InsertionConfig {
        &self.config
    }

    /// Obfuscates `circuit`, producing the `R⁻¹RC` form.
    pub fn obfuscate(&self, circuit: &Circuit) -> Obfuscation {
        let span = qobs::span("core.obfuscate")
            .attr("circuit", circuit.name())
            .attr("wires", circuit.num_qubits())
            .attr("gates", circuit.gate_count());
        let insertion = insert_random_pairs(circuit, &self.config);
        let _span = span.attr("inserted", insertion.inserted_count());
        Obfuscation {
            original: circuit.clone(),
            insertion,
            seed: self.config.seed,
        }
    }
}

/// An obfuscated circuit with its provenance.
#[derive(Debug, Clone)]
pub struct Obfuscation {
    original: Circuit,
    insertion: Insertion,
    seed: u64,
}

impl Obfuscation {
    /// Reassembles an `Obfuscation` from persisted parts (the batch
    /// service checkpoints the original circuit, the insertion record,
    /// and the seed, then rebuilds the value on resume).
    pub fn from_parts(original: Circuit, insertion: Insertion, seed: u64) -> Self {
        Obfuscation {
            original,
            insertion,
            seed,
        }
    }

    /// The original (secret) circuit `C`.
    pub fn original(&self) -> &Circuit {
        &self.original
    }

    /// The obfuscated circuit `R⁻¹RC` (functionally equal to `C`, same
    /// depth).
    pub fn obfuscated(&self) -> &Circuit {
        &self.insertion.circuit
    }

    /// The underlying insertion record (pairs, indices, layers).
    pub fn insertion(&self) -> &Insertion {
        &self.insertion
    }

    /// Number of inserted forward gates (1–4 in the paper's experiments).
    pub fn inserted_count(&self) -> usize {
        self.insertion.inserted_count()
    }

    /// The masked view `RC` — what leaks if the `R⁻¹` half is stripped
    /// (Figure 4's "obfuscated" measurement).
    pub fn masked_circuit(&self) -> Circuit {
        self.insertion.masked_circuit()
    }

    /// The random circuit `R`.
    pub fn r_circuit(&self) -> Circuit {
        self.insertion.r_circuit()
    }

    /// The inverse random circuit `R⁻¹`.
    pub fn r_inverse_circuit(&self) -> Circuit {
        self.insertion.r_inverse_circuit()
    }

    /// Gate-count increase as a percentage (Table I's "gate change").
    pub fn gate_increase_percent(&self) -> f64 {
        let before = self.original.gate_count() as f64;
        if before == 0.0 {
            return 0.0;
        }
        (self.insertion.gate_overhead() as f64) / before * 100.0
    }

    /// Depth increase (always 0 by construction; exposed for reporting).
    pub fn depth_increase(&self) -> isize {
        self.obfuscated().depth() as isize - self.original.depth() as isize
    }

    /// Splits the obfuscated circuit with a random interlocking pattern
    /// derived from `seed` (see [`InterlockPattern::random_for`]).
    ///
    /// With the default leading-window insertion the resulting split
    /// always separates every `R`/`R⁻¹` pair. For mid-circuit insertions
    /// (`leading_only: false`) wire-freezing can occasionally strand a
    /// pair in one segment; this method retries with derived pattern
    /// seeds (up to 16 attempts) and returns the first fully separated
    /// split, falling back to the last attempt if none separates (check
    /// [`Obfuscation::split_separates_pairs`] when using that mode).
    pub fn split(&self, seed: u64) -> SplitPair {
        let _span = qobs::span("core.split")
            .attr("circuit", self.original.name())
            .attr("wires", self.original.num_qubits())
            .attr("gates", self.obfuscated().gate_count());
        let mut last = None;
        for attempt in 0..16u64 {
            let pattern =
                InterlockPattern::random_for(self, seed.wrapping_add(attempt.wrapping_mul(0x9E37)));
            let split = pattern.split(self);
            if self.split_separates_pairs(&split) {
                return split;
            }
            last = Some(split);
        }
        last.expect("at least one attempt ran")
    }

    /// `true` if every inserted pair has its inverse half in the left
    /// segment and its forward half in the right segment.
    pub fn split_separates_pairs(&self, split: &SplitPair) -> bool {
        self.insertion.pairs.iter().all(|pair| {
            split.assignment[pair.inverse_index] && !split.assignment[pair.forward_index]
        })
    }

    /// Splits with an explicit pattern.
    pub fn split_with(&self, pattern: &InterlockPattern) -> SplitPair {
        pattern.split(self)
    }

    /// Recombines `split` and checks the result against the original
    /// design with the tiered verifier — usable far past the
    /// dense-unitary cap (Clifford designs via the stabilizer tableau,
    /// larger general circuits via the parallel stimulus miter).
    ///
    /// # Errors
    ///
    /// Returns [`crate::LockError::Recombine`] if the split's wire maps
    /// are incomplete.
    ///
    /// # Example
    ///
    /// ```
    /// use qcir::Circuit;
    /// use qverify::Verifier;
    /// use tetrislock::Obfuscator;
    ///
    /// let mut c = Circuit::new(4);
    /// c.h(0).cx(0, 1).cx(1, 2).cx(0, 1);
    /// let obf = Obfuscator::new().with_seed(1).obfuscate(&c);
    /// let split = obf.split(7);
    /// let verdict = obf.verify_roundtrip(&split, &Verifier::new())?;
    /// assert!(verdict.is_equivalent());
    /// # Ok::<(), tetrislock::LockError>(())
    /// ```
    pub fn verify_roundtrip(
        &self,
        split: &SplitPair,
        verifier: &qverify::Verifier,
    ) -> Result<qverify::Verdict, crate::LockError> {
        let restored = crate::recombine::recombine(split)?;
        Ok(verifier.check(&self.original, &restored))
    }

    /// The seed used for insertion (recorded for reproducibility).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::unitary::equivalent_up_to_phase;

    fn sample() -> Circuit {
        let mut c = Circuit::with_name(5, "sample");
        c.h(0).cx(0, 1).ccx(0, 1, 2).cx(2, 3).h(4).cx(3, 4);
        c
    }

    #[test]
    fn builder_configures() {
        let o = Obfuscator::new()
            .with_seed(5)
            .with_gate_limit(2)
            .with_policy(crate::policy::GatePolicy::Hadamard);
        assert_eq!(o.config().seed, 5);
        assert_eq!(o.config().gate_limit, 2);
    }

    #[test]
    fn obfuscation_preserves_function_and_depth() {
        let c = sample();
        for seed in 0..10 {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(&c);
            assert_eq!(obf.depth_increase(), 0, "seed {seed}");
            assert!(
                equivalent_up_to_phase(&c, obf.obfuscated(), 1e-9).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn gate_increase_reported() {
        let c = sample();
        let obf = Obfuscator::new().with_seed(1).obfuscate(&c);
        let expect = obf.insertion().gate_overhead() as f64 / c.gate_count() as f64 * 100.0;
        assert!((obf.gate_increase_percent() - expect).abs() < 1e-12);
    }

    #[test]
    fn accessors_consistent() {
        let c = sample();
        let obf = Obfuscator::new().with_seed(2).obfuscate(&c);
        assert_eq!(obf.original().instructions(), c.instructions());
        assert_eq!(obf.seed(), 2);
        assert_eq!(
            obf.obfuscated().gate_count(),
            c.gate_count() + 2 * obf.inserted_count()
        );
        assert_eq!(obf.r_circuit().gate_count(), obf.inserted_count());
    }
}
