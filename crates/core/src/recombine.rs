//! De-obfuscation: recombining split-compiled segments (§IV-B).
//!
//! The designer, holding the wire maps, concatenates the two compiled
//! segments back onto the original register. Because the left segment is
//! a per-wire prefix of the obfuscated circuit, `left ∘ right` reproduces
//! `R⁻¹RC = C` exactly; the `R` halves cancel against their `R⁻¹`
//! partners without any extra correction circuit — this is the paper's
//! "eliminating redundancies" step.

use crate::error::LockError;
use crate::interlock::{Segment, SplitPair};
use qcir::{Circuit, Qubit};
use std::collections::BTreeMap;

/// Recombines a split back into a circuit over the original register.
///
/// # Errors
///
/// Returns [`LockError::Recombine`] if a segment references a wire that
/// its map does not cover.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use qverify::Verifier;
/// use tetrislock::{Obfuscator, recombine::recombine};
///
/// let mut c = Circuit::new(4);
/// c.h(0).cx(0, 1).cx(1, 2).cx(0, 1);
/// let obf = Obfuscator::new().with_seed(3).obfuscate(&c);
/// let split = obf.split(9);
/// let restored = recombine(&split)?;
/// assert!(Verifier::new().check(&c, &restored).is_equivalent());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn recombine(split: &SplitPair) -> Result<Circuit, LockError> {
    let _span = qobs::span("core.recombine").attr("wires", split.original_qubits);
    let mut out = Circuit::with_name(split.original_qubits, "recombined");
    append_segment(&mut out, &split.left)?;
    append_segment(&mut out, &split.right)?;
    Ok(out)
}

/// Recombines two independently *compiled* segments. The caller supplies,
/// for each segment, the compiled circuit together with the map from the
/// segment's logical wires back to the original register (obtained by
/// composing the split's wire map with the compiler's final layout).
///
/// # Errors
///
/// Returns [`LockError::Recombine`] on incomplete maps or register
/// overflow.
pub fn recombine_compiled(
    num_qubits: u32,
    left: &Circuit,
    left_to_original: &BTreeMap<Qubit, Qubit>,
    right: &Circuit,
    right_to_original: &BTreeMap<Qubit, Qubit>,
) -> Result<Circuit, LockError> {
    let _span = qobs::span("core.recombine_compiled")
        .attr("wires", num_qubits)
        .attr("gates_left", left.gate_count())
        .attr("gates_right", right.gate_count());
    let mut out = Circuit::with_name(num_qubits, "recombined_compiled");
    for (circuit, map) in [(left, left_to_original), (right, right_to_original)] {
        for inst in circuit.iter() {
            let mapped = inst
                .remapped(map)
                .map_err(|e| LockError::Recombine(e.to_string()))?;
            out.push(mapped)
                .map_err(|e| LockError::Recombine(e.to_string()))?;
        }
    }
    Ok(out)
}

fn append_segment(out: &mut Circuit, segment: &Segment) -> Result<(), LockError> {
    let inverse = segment.inverse_map();
    for inst in segment.circuit.iter() {
        let mapped = inst
            .remapped(&inverse)
            .map_err(|e| LockError::Recombine(e.to_string()))?;
        out.push(mapped)
            .map_err(|e| LockError::Recombine(e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscate::Obfuscator;
    use qverify::Verifier;

    fn sample() -> Circuit {
        let mut c = Circuit::with_name(5, "rt");
        c.h(0).cx(0, 1).ccx(1, 2, 3).cx(3, 4).x(2).cx(0, 1);
        c
    }

    #[test]
    fn recombined_split_equals_original() {
        let verifier = Verifier::new();
        for seed in 0..15 {
            let c = sample();
            let obf = Obfuscator::new().with_seed(seed).obfuscate(&c);
            let split = obf.split(seed ^ 0xDEAD);
            let restored = recombine(&split).unwrap();
            assert!(verifier.check(&c, &restored).is_equivalent(), "seed {seed}");
        }
    }

    #[test]
    fn recombined_gate_count_matches_obfuscated() {
        let c = sample();
        let obf = Obfuscator::new().with_seed(4).obfuscate(&c);
        let split = obf.split(2);
        let restored = recombine(&split).unwrap();
        assert_eq!(restored.gate_count(), obf.obfuscated().gate_count());
        assert_eq!(restored.num_qubits(), c.num_qubits());
    }

    #[test]
    fn recombine_compiled_maps_wires() {
        // Identity maps → plain concatenation.
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        let map: BTreeMap<Qubit, Qubit> = (0..2).map(|i| (Qubit::new(i), Qubit::new(i))).collect();
        let joined = recombine_compiled(2, &a, &map, &b, &map).unwrap();
        assert_eq!(joined.gate_count(), 2);
    }

    #[test]
    fn recombine_compiled_rejects_missing_wire() {
        let mut a = Circuit::new(2);
        a.h(1);
        let empty: BTreeMap<Qubit, Qubit> = BTreeMap::new();
        let b = Circuit::new(1);
        assert!(matches!(
            recombine_compiled(2, &a, &empty, &b, &empty),
            Err(LockError::Recombine(_))
        ));
    }

    #[test]
    fn recombine_compiled_rejects_overflow() {
        let mut a = Circuit::new(2);
        a.h(0);
        let bad: BTreeMap<Qubit, Qubit> = [(Qubit::new(0), Qubit::new(9))].into();
        let b = Circuit::new(1);
        assert!(recombine_compiled(2, &a, &bad, &b, &bad.clone()).is_err());
    }
}
