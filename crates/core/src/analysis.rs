//! Security analysis of a completed split.
//!
//! Quantifies, for a given obfuscation + split, the properties the paper
//! argues qualitatively in §IV-C: how much of the original design each
//! compiler sees, how jagged the boundary is, how mismatched the segment
//! widths are, and the resulting Eq. 1 attack complexity.

use crate::attack::{saki_complexity_log10, tetrislock_complexity_log10, SegmentCensus};
use crate::interlock::SplitPair;
use crate::obfuscate::Obfuscation;
use std::collections::BTreeSet;

/// Quantitative security report for one split.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitReport {
    /// Fraction of *original-circuit* gates visible to the left compiler.
    pub left_exposure: f64,
    /// Fraction of original gates visible to the right compiler.
    pub right_exposure: f64,
    /// Number of distinct cut columns across wires (1 = straight cut;
    /// higher = more interlocked).
    pub distinct_cuts: usize,
    /// Absolute difference between segment qubit counts.
    pub width_gap: u32,
    /// `true` if every R/R⁻¹ pair straddles the boundary.
    pub pairs_separated: bool,
    /// log₁₀ of the Eq. 1 collusion complexity for this split (attacker
    /// holds the left segment, census = uniform k=4 up to `n_max`).
    pub eq1_log10: f64,
    /// log₁₀ of the equal-width baseline complexity for comparison.
    pub baseline_log10: f64,
}

impl SplitReport {
    /// `true` if neither compiler sees the complete original circuit.
    pub fn no_full_exposure(&self) -> bool {
        self.left_exposure < 1.0 && self.right_exposure < 1.0
    }
}

/// Analyzes a split against its obfuscation.
///
/// # Panics
///
/// Panics if `split` does not belong to `obfuscation` (assignment length
/// mismatch).
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use tetrislock::{analysis::analyze_split, Obfuscator};
///
/// let mut c = Circuit::new(4);
/// c.h(0).cx(0, 1).cx(1, 2).cx(0, 1);
/// let obf = Obfuscator::new().with_seed(1).obfuscate(&c);
/// let split = obf.split(3);
/// let report = analyze_split(&obf, &split);
/// assert!(report.pairs_separated);
/// assert!(report.no_full_exposure());
/// ```
pub fn analyze_split(obfuscation: &Obfuscation, split: &SplitPair) -> SplitReport {
    let total = obfuscation.obfuscated().gate_count();
    assert_eq!(
        split.assignment.len(),
        total,
        "split does not match obfuscation"
    );

    // Indices of inserted gates (either half).
    let inserted: BTreeSet<usize> = obfuscation
        .insertion()
        .pairs
        .iter()
        .flat_map(|p| [p.inverse_index, p.forward_index])
        .collect();
    let original_total = total - inserted.len();

    let mut left_original = 0usize;
    let mut right_original = 0usize;
    for (idx, &goes_left) in split.assignment.iter().enumerate() {
        if inserted.contains(&idx) {
            continue;
        }
        if goes_left {
            left_original += 1;
        } else {
            right_original += 1;
        }
    }
    let frac = |count: usize| {
        if original_total == 0 {
            0.0
        } else {
            count as f64 / original_total as f64
        }
    };

    let distinct_cuts: BTreeSet<usize> = split.pattern.cuts().iter().copied().collect();
    let (wl, wr) = (
        split.left.circuit.num_qubits(),
        split.right.circuit.num_qubits(),
    );

    let n_max = obfuscation.obfuscated().num_qubits() + 4;
    let census = SegmentCensus::uniform(n_max, 4);
    SplitReport {
        left_exposure: frac(left_original),
        right_exposure: frac(right_original),
        distinct_cuts: distinct_cuts.len(),
        width_gap: wl.abs_diff(wr),
        pairs_separated: obfuscation.split_separates_pairs(split),
        eq1_log10: tetrislock_complexity_log10(wl, &census),
        baseline_log10: saki_complexity_log10(obfuscation.obfuscated().num_qubits(), 4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscate::Obfuscator;
    use qcir::Circuit;

    fn sample() -> Circuit {
        let mut c = Circuit::with_name(6, "analysis");
        c.h(0)
            .cx(0, 1)
            .x(1)
            .cx(1, 2)
            .h(2)
            .cx(2, 3)
            .cx(3, 4)
            .x(3)
            .cx(4, 5)
            .h(5);
        c
    }

    #[test]
    fn exposures_partition_original_gates() {
        let c = sample();
        for seed in 0..10 {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(&c);
            let split = obf.split(seed + 3);
            let report = analyze_split(&obf, &split);
            assert!(
                (report.left_exposure + report.right_exposure - 1.0).abs() < 1e-12,
                "seed {seed}: exposures must sum to 1"
            );
            assert!(
                report.no_full_exposure()
                    || report.left_exposure == 1.0
                    || report.right_exposure == 1.0
            );
        }
    }

    #[test]
    fn default_splits_separate_pairs_and_hide_design() {
        let c = sample();
        let mut hidden = 0;
        for seed in 0..10 {
            let obf = Obfuscator::new().with_seed(seed).obfuscate(&c);
            let split = obf.split(seed * 7 + 1);
            let report = analyze_split(&obf, &split);
            assert!(report.pairs_separated, "seed {seed}");
            if report.no_full_exposure() {
                hidden += 1;
            }
        }
        assert!(
            hidden >= 7,
            "full design leaked too often: {hidden}/10 hidden"
        );
    }

    #[test]
    fn jaggedness_counted() {
        let c = sample();
        let obf = Obfuscator::new().with_seed(2).obfuscate(&c);
        let split = obf.split(5);
        let report = analyze_split(&obf, &split);
        assert!(report.distinct_cuts >= 2, "cut should be jagged");
        assert!(report.eq1_log10 > report.baseline_log10 - 2.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_split_rejected() {
        let c = sample();
        let obf_a = Obfuscator::new().with_seed(1).obfuscate(&c);
        let mut small = Circuit::new(3);
        small.x(0);
        let obf_b = Obfuscator::new().with_seed(1).obfuscate(&small);
        let split_b = obf_b.split(1);
        let _ = analyze_split(&obf_a, &split_b);
    }
}
