//! Attack-complexity models (§IV-C, Eq. 1).
//!
//! The collusion attack on split compilation tries to reconnect the two
//! compiled segments by matching qubits across the boundary.
//!
//! * Prior work (Saki et al. \[20\]) splits into equal-width cascading
//!   sections, so the attacker only has to consider candidate segments of
//!   exactly `n` qubits and try every wire permutation:
//!   `complexity = kₙ · n!`.
//! * TetrisLock's interlocking split produces segments with *unequal*
//!   qubit counts, and not every wire crosses the boundary, so the
//!   attacker must consider every candidate size `i`, every subset of
//!   wires to connect on both sides, and every mapping between them
//!   (paper Eq. 1):
//!
//!   `complexity = Σᵢ₌₁^{n_max} kᵢ · Σⱼ₌₀^{min(n,i)} C(n,j)·C(i,j)·j!`
//!
//! Exact values are computed in `u128` where they fit; a log₁₀ API covers
//! the asymptotic regime.

use crate::error::LockError;

/// Exact factorial, `None` on u128 overflow (n ≥ 35).
pub fn factorial(n: u32) -> Option<u128> {
    let mut acc: u128 = 1;
    for k in 2..=n as u128 {
        acc = acc.checked_mul(k)?;
    }
    Some(acc)
}

/// Exact binomial coefficient `C(n, k)`, `None` on overflow.
pub fn binomial(n: u32, k: u32) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k as u128 {
        acc = acc.checked_mul(n as u128 - i)?;
        acc /= i + 1;
    }
    Some(acc)
}

/// `log₁₀(n!)` via direct log summation (exact enough for plotting).
pub fn log10_factorial(n: u32) -> f64 {
    (2..=n).map(|k| (k as f64).log10()).sum()
}

/// `log₁₀ C(n, k)`.
pub fn log10_binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    log10_factorial(n) - log10_factorial(k) - log10_factorial(n - k)
}

/// Candidate-segment census: `count(i)` = number of segments with `i`
/// qubits the attacker sees from the other compiler (the paper's `kᵢ`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentCensus {
    counts: Vec<u64>,
}

impl SegmentCensus {
    /// Uniform census: `k` candidates at every size `1..=n_max`.
    pub fn uniform(n_max: u32, k: u64) -> Self {
        SegmentCensus {
            counts: vec![k; n_max as usize],
        }
    }

    /// Census from explicit per-size counts (`counts[0]` = segments of 1
    /// qubit).
    pub fn from_counts(counts: Vec<u64>) -> Self {
        SegmentCensus { counts }
    }

    /// Largest segment size with a nonzero count.
    pub fn n_max(&self) -> u32 {
        self.counts.len() as u32
    }

    /// Number of candidate segments of size `i` (1-based).
    pub fn count(&self, i: u32) -> u64 {
        if i == 0 || i as usize > self.counts.len() {
            0
        } else {
            self.counts[i as usize - 1]
        }
    }
}

/// Saki et al. \[20\] collusion complexity: `kₙ · n!` — the attacker matches
/// the `n` wires of one segment against a same-width candidate.
///
/// # Errors
///
/// Returns [`LockError::ComplexityOverflow`] when the exact value exceeds
/// `u128` (use [`saki_complexity_log10`]).
pub fn saki_complexity(n: u32, candidates_same_width: u64) -> Result<u128, LockError> {
    factorial(n)
        .and_then(|f| f.checked_mul(candidates_same_width as u128))
        .ok_or(LockError::ComplexityOverflow { qubits: n })
}

/// Log₁₀ of the Saki complexity.
pub fn saki_complexity_log10(n: u32, candidates_same_width: u64) -> f64 {
    if candidates_same_width == 0 {
        return f64::NEG_INFINITY;
    }
    (candidates_same_width as f64).log10() + log10_factorial(n)
}

/// TetrisLock collusion complexity (paper Eq. 1) for a segment of `n`
/// qubits against the census of the other compiler's segments.
///
/// # Errors
///
/// Returns [`LockError::ComplexityOverflow`] when the exact value exceeds
/// `u128` (use [`tetrislock_complexity_log10`]).
///
/// # Example
///
/// ```
/// use tetrislock::attack::{saki_complexity, tetrislock_complexity, SegmentCensus};
///
/// let n = 5;
/// let census = SegmentCensus::uniform(8, 3);
/// let ours = tetrislock_complexity(n, &census)?;
/// let theirs = saki_complexity(n, 3)?;
/// assert!(ours > theirs); // Eq. 1 dominates kₙ·n!
/// # Ok::<(), tetrislock::LockError>(())
/// ```
pub fn tetrislock_complexity(n: u32, census: &SegmentCensus) -> Result<u128, LockError> {
    let mut total: u128 = 0;
    for i in 1..=census.n_max() {
        let k_i = census.count(i) as u128;
        if k_i == 0 {
            continue;
        }
        let mut inner: u128 = 0;
        for j in 0..=n.min(i) {
            let term = binomial(n, j)
                .zip(binomial(i, j))
                .zip(factorial(j))
                .and_then(|((a, b), f)| a.checked_mul(b)?.checked_mul(f))
                .ok_or(LockError::ComplexityOverflow { qubits: n })?;
            inner = inner
                .checked_add(term)
                .ok_or(LockError::ComplexityOverflow { qubits: n })?;
        }
        total = k_i
            .checked_mul(inner)
            .and_then(|x| total.checked_add(x))
            .ok_or(LockError::ComplexityOverflow { qubits: n })?;
    }
    Ok(total)
}

/// Log₁₀ of the TetrisLock complexity (Eq. 1), valid for any size.
pub fn tetrislock_complexity_log10(n: u32, census: &SegmentCensus) -> f64 {
    // log-sum-exp over all (i, j) terms, in base 10.
    let mut logs: Vec<f64> = Vec::new();
    for i in 1..=census.n_max() {
        let k_i = census.count(i);
        if k_i == 0 {
            continue;
        }
        let log_k = (k_i as f64).log10();
        for j in 0..=n.min(i) {
            logs.push(log_k + log10_binomial(n, j) + log10_binomial(i, j) + log10_factorial(j));
        }
    }
    log10_sum(&logs)
}

/// `log₁₀(Σ 10^{xᵢ})` computed stably.
fn log10_sum(logs: &[f64]) -> f64 {
    let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + logs.iter().map(|x| 10f64.powf(x - m)).sum::<f64>().log10()
}

/// The paper's headline security ratio: TetrisLock complexity divided by
/// the Saki baseline, in log₁₀ (positive = TetrisLock harder to attack).
pub fn advantage_log10(n: u32, census: &SegmentCensus) -> f64 {
    tetrislock_complexity_log10(n, census) - saki_complexity_log10(n, census.count(n).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), Some(1));
        assert_eq!(factorial(1), Some(1));
        assert_eq!(factorial(5), Some(120));
        assert_eq!(factorial(20), Some(2_432_902_008_176_640_000));
        assert!(factorial(34).is_some());
        assert!(factorial(35).is_none()); // 35! > u128::MAX
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(10, 0), Some(1));
        assert_eq!(binomial(10, 10), Some(1));
        assert_eq!(binomial(4, 7), Some(0));
        assert_eq!(binomial(52, 5), Some(2_598_960));
    }

    #[test]
    fn log_factorial_tracks_exact() {
        for n in [1u32, 5, 10, 20, 30] {
            let exact = factorial(n).unwrap() as f64;
            assert!((log10_factorial(n) - exact.log10()).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn saki_matches_hand_computation() {
        // 5 qubits, 3 candidates: 3 · 120 = 360.
        assert_eq!(saki_complexity(5, 3).unwrap(), 360);
        assert!((saki_complexity_log10(5, 3) - 360f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn saki_overflows_gracefully() {
        assert!(matches!(
            saki_complexity(40, 1),
            Err(LockError::ComplexityOverflow { qubits: 40 })
        ));
        assert!(saki_complexity_log10(40, 1).is_finite());
    }

    #[test]
    fn eq1_hand_computation_small() {
        // n = 1, census = one segment of 1 qubit:
        // Σ_{j=0}^{1} C(1,j)² j! = 1 + 1 = 2.
        let census = SegmentCensus::from_counts(vec![1]);
        assert_eq!(tetrislock_complexity(1, &census).unwrap(), 2);

        // n = 2, one segment of 2 qubits:
        // j=0: 1, j=1: C(2,1)·C(2,1)·1 = 4, j=2: C(2,2)²·2 = 2 → 7.
        let census = SegmentCensus::from_counts(vec![0, 1]);
        assert_eq!(tetrislock_complexity(2, &census).unwrap(), 7);
    }

    #[test]
    fn eq1_dominates_saki() {
        // The paper's argument: kₙ·n! is one slice (i = n, j = n) of Eq. 1.
        for n in 2..=10u32 {
            let census = SegmentCensus::uniform(n + 2, 4);
            let ours = tetrislock_complexity(n, &census).unwrap();
            let theirs = saki_complexity(n, 4).unwrap();
            assert!(ours > theirs, "n = {n}: {ours} <= {theirs}");
        }
    }

    #[test]
    fn log_api_tracks_exact_api() {
        for n in [3u32, 5, 8, 12] {
            let census = SegmentCensus::uniform(n + 3, 2);
            let exact = tetrislock_complexity(n, &census).unwrap() as f64;
            let logged = tetrislock_complexity_log10(n, &census);
            assert!(
                (logged - exact.log10()).abs() < 1e-6,
                "n = {n}: {logged} vs {}",
                exact.log10()
            );
        }
    }

    #[test]
    fn log_api_handles_large_n() {
        let census = SegmentCensus::uniform(60, 8);
        let v = tetrislock_complexity_log10(50, &census);
        assert!(
            v > 60.0,
            "50-qubit complexity should exceed 10^60, got 10^{v}"
        );
        assert!(v.is_finite());
    }

    #[test]
    fn advantage_is_positive() {
        for n in [4u32, 8, 16, 27] {
            let census = SegmentCensus::uniform(n + 4, 5);
            assert!(advantage_log10(n, &census) > 0.0, "n = {n}");
        }
    }

    #[test]
    fn census_accessors() {
        let census = SegmentCensus::from_counts(vec![1, 0, 7]);
        assert_eq!(census.n_max(), 3);
        assert_eq!(census.count(0), 0);
        assert_eq!(census.count(1), 1);
        assert_eq!(census.count(2), 0);
        assert_eq!(census.count(3), 7);
        assert_eq!(census.count(9), 0);
        assert_eq!(SegmentCensus::uniform(4, 2).count(4), 2);
    }

    #[test]
    fn empty_census_gives_zero() {
        let census = SegmentCensus::from_counts(vec![]);
        assert_eq!(tetrislock_complexity(5, &census).unwrap(), 0);
        assert_eq!(tetrislock_complexity_log10(5, &census), f64::NEG_INFINITY);
    }
}
