//! Prior-work baselines (§II-C / §IV-C).
//!
//! * [`das_random_insertion`] — randomized reversible-circuit insertion in
//!   the style of Das & Ghosh \[16\]: a random block `R` is *prepended* to
//!   the circuit and its inverse applied afterwards to restore function.
//!   Weaknesses reproduced here: the depth grows by `depth(R)`, and the
//!   `R|C` boundary is a straight vertical line an attacker can look for.
//! * [`saki_cascade_split`] — cascading split compilation in the style of
//!   Saki et al. \[20\]: the circuit is cut at a single global column into
//!   two sections over the *same* full register, which is what enables
//!   the `kₙ·n!` qubit-matching collusion attack.

use qcir::dag::layered_instructions;
use qcir::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of the Das-style random insertion baseline.
#[derive(Debug, Clone)]
pub struct DasInsertion {
    /// What the untrusted compiler sees: `R · C`.
    pub obfuscated: Circuit,
    /// The restoration key the designer keeps: `R⁻¹`.
    pub r_inverse: Circuit,
    /// The random block itself.
    pub r: Circuit,
}

impl DasInsertion {
    /// The restored circuit `R⁻¹ · R · C` (prepend the key).
    pub fn restored(&self) -> Circuit {
        self.r_inverse
            .then(&self.obfuscated)
            .expect("same register")
    }

    /// Depth overhead the insertion cost (TetrisLock's is always 0).
    pub fn depth_overhead(&self, original: &Circuit) -> usize {
        self.obfuscated.depth().saturating_sub(original.depth())
    }

    /// The layer index where `R` ends and `C` begins — the straight
    /// boundary an attacker can search for (the structural weakness
    /// TetrisLock removes).
    pub fn boundary_layer(&self) -> usize {
        self.r.depth()
    }
}

/// Builds a random reversible block of `num_gates` X/CX gates and
/// prepends it to `circuit` (\[16\]-style obfuscation).
///
/// # Panics
///
/// Panics if `circuit` has fewer than 2 qubits and a CX is drawn (not
/// possible: single-qubit registers only draw X).
pub fn das_random_insertion(circuit: &Circuit, num_gates: usize, seed: u64) -> DasInsertion {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = circuit.num_qubits();
    let mut r = Circuit::with_name(n, "R_das");
    for _ in 0..num_gates {
        if n >= 2 && rng.gen::<f64>() < 0.5 {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            r.cx(a, b);
        } else {
            let q = rng.gen_range(0..n);
            r.x(q);
        }
    }
    let obfuscated = r.then(circuit).expect("same register");
    DasInsertion {
        r_inverse: r.inverse(),
        r,
        obfuscated,
    }
}

/// A cascading (straight-cut) split in the style of Saki et al. \[20\]:
/// layers `< cut_layer` form the left section, the rest the right
/// section. Both sections keep the full register — equal qubit counts on
/// both sides of the boundary.
///
/// Returns `(left, right)`.
pub fn saki_cascade_split(circuit: &Circuit, cut_layer: usize) -> (Circuit, Circuit) {
    let layers = layered_instructions(circuit);
    let n = circuit.num_qubits();
    let mut left = Circuit::with_name(n, format!("{}_cascade_left", circuit.name()));
    let mut right = Circuit::with_name(n, format!("{}_cascade_right", circuit.name()));
    for (idx, layer) in layers.into_iter().enumerate() {
        let target = if idx < cut_layer {
            &mut left
        } else {
            &mut right
        };
        for inst in layer {
            target.push(inst).expect("same register");
        }
    }
    (left, right)
}

/// Inserts the swap network Saki et al. place between cascading sections
/// (a random wire permutation realized with SWAP gates), returning the
/// permuted right section and the permutation applied.
pub fn saki_swap_network(right: &Circuit, seed: u64) -> (Circuit, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = right.num_qubits();
    // Random permutation via Fisher-Yates.
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    // Realize the permutation with explicit SWAPs at the section front.
    let mut out = Circuit::with_name(n, format!("{}_swapped", right.name()));
    let mut current: Vec<u32> = (0..n).collect();
    #[allow(clippy::needless_range_loop)] // `current` is mutated while scanning
    for target_pos in 0..n as usize {
        let want = perm[target_pos];
        let at = current
            .iter()
            .position(|&w| w == want)
            .expect("permutation covers all wires");
        if at != target_pos {
            out.swap(target_pos as u32, at as u32);
            current.swap(target_pos, at);
        }
    }
    // Remap the right section through the permutation.
    let map: std::collections::BTreeMap<qcir::Qubit, qcir::Qubit> = perm
        .iter()
        .enumerate()
        .map(|(pos, &orig)| (qcir::Qubit::new(orig), qcir::Qubit::new(pos as u32)))
        .collect();
    let remapped = right.remapped(n, &map).expect("total permutation");
    for inst in remapped.iter() {
        out.push(inst.clone()).expect("same register");
    }
    (out, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::unitary::equivalent_up_to_phase;

    fn sample() -> Circuit {
        let mut c = Circuit::with_name(4, "base");
        c.h(0).cx(0, 1).ccx(1, 2, 3).cx(0, 3);
        c
    }

    #[test]
    fn das_restoration_is_exact() {
        let c = sample();
        for seed in 0..5 {
            let das = das_random_insertion(&c, 4, seed);
            assert!(
                equivalent_up_to_phase(&c, &das.restored(), 1e-9).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn das_obfuscated_differs_from_original() {
        let c = sample();
        let das = das_random_insertion(&c, 4, 1);
        assert!(!equivalent_up_to_phase(&c, &das.obfuscated, 1e-9).unwrap());
    }

    #[test]
    fn das_adds_depth_tetrislock_does_not() {
        let c = sample();
        let das = das_random_insertion(&c, 4, 2);
        assert!(
            das.depth_overhead(&c) > 0,
            "R must add depth when prepended"
        );
        let tetris = crate::Obfuscator::new().with_seed(2).obfuscate(&c);
        assert_eq!(tetris.depth_increase(), 0);
    }

    #[test]
    fn das_boundary_is_visible() {
        let c = sample();
        let das = das_random_insertion(&c, 6, 3);
        // The boundary layer equals R's depth — a structural giveaway.
        assert_eq!(das.boundary_layer(), das.r.depth());
        assert!(das.boundary_layer() > 0);
    }

    #[test]
    fn das_gate_count() {
        let c = sample();
        let das = das_random_insertion(&c, 3, 4);
        assert_eq!(das.obfuscated.gate_count(), c.gate_count() + 3);
        assert_eq!(das.r_inverse.gate_count(), 3);
    }

    #[test]
    fn cascade_split_partitions_layers() {
        let c = sample();
        let (left, right) = saki_cascade_split(&c, 2);
        assert_eq!(left.gate_count() + right.gate_count(), c.gate_count());
        // Both sections keep the full register — the collusion weakness.
        assert_eq!(left.num_qubits(), c.num_qubits());
        assert_eq!(right.num_qubits(), c.num_qubits());
        // Rejoining restores the function.
        let rejoined = left.then(&right).unwrap();
        assert!(equivalent_up_to_phase(&c, &rejoined, 1e-9).unwrap());
    }

    #[test]
    fn cascade_extreme_cuts() {
        let c = sample();
        let (left, right) = saki_cascade_split(&c, 0);
        assert!(left.is_empty());
        assert_eq!(right.gate_count(), c.gate_count());
        let (left, right) = saki_cascade_split(&c, 99);
        assert_eq!(left.gate_count(), c.gate_count());
        assert!(right.is_empty());
    }

    #[test]
    fn swap_network_is_a_permutation() {
        let c = sample();
        let (_, right) = saki_cascade_split(&c, 1);
        let (swapped, perm) = saki_swap_network(&right, 7);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // The swapped section contains the remapped gates plus SWAPs.
        assert!(swapped.gate_count() >= right.gate_count());
    }

    #[test]
    fn swap_network_preserves_function() {
        // SWAP prefix followed by remapped gates must equal the original
        // section's action conjugated by the permutation... the designer
        // undoes it with the inverse permutation; here we check the
        // self-consistency: applying the inverse SWAPs restores the wire
        // order, i.e. swaps-then-remapped == original up to the final
        // wire relabeling being undone.
        let c = sample();
        let (_, right) = saki_cascade_split(&c, 1);
        let (swapped, perm) = saki_swap_network(&right, 9);
        // Build the un-permutation circuit (apply inverse mapping with
        // SWAP gates at the end) and compare against the plain section.
        let n = right.num_qubits();
        let mut undo = swapped.clone();
        // Move wire at position pos (holding original wire perm[pos]) back.
        let mut current: Vec<u32> = perm.clone();
        for orig in 0..n {
            let at = current.iter().position(|&w| w == orig).unwrap();
            if at as u32 != orig {
                undo.swap(orig, at as u32);
                current.swap(orig as usize, at);
            }
        }
        // undo = SWAPs · remapped(right) · SWAPs⁻¹-at-end. The net wire
        // relabeling cancels, so it should equal `right` as a unitary.
        assert!(equivalent_up_to_phase(&right, &undo, 1e-9).unwrap());
    }
}
