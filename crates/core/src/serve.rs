//! `tetrislock serve` — the long-running, self-healing protection
//! daemon.
//!
//! [`run_serve`] watches an intake directory for circuit files
//! (`.real` / `.qasm`), admits them into a priority queue, and drives
//! each through the checkpointed [`crate::job`] pipeline on a worker
//! pool. Unlike [`crate::batch`], which runs a fixed set of inputs to
//! completion, serve is built to survive a hostile environment
//! indefinitely:
//!
//! - **Stability window** — a file is only admitted once its length and
//!   mtime have been unchanged for `stability_ms`, so half-written
//!   inputs from slow producers are never picked up.
//! - **Retry with backoff** — every stage attempt runs under a
//!   wall-clock timeout; failures (stage errors, panics, timeouts) cost
//!   a strike and are retried after a deterministic seeded backoff
//!   ([`crate::retry::RetryPolicy`]).
//! - **Crash-loop quarantine** — when the [`crate::retry::CircuitBreaker`]
//!   opens (N consecutive strikes), the job is moved to `failed/` with a
//!   typed, serialized [`FailureReport`] instead of wedging the queue.
//!   Inputs that do not even parse are quarantined at intake as
//!   [`FailureKind::Poisoned`].
//! - **Priorities and cancellation** — an input named `p<k>--<id>.real`
//!   runs at priority `k` (lower runs first, FIFO within a priority);
//!   dropping `<id>.cancel` into the watch directory cancels the job
//!   whether it is queued or in flight.
//! - **Graceful drain** — dropping a file named
//!   [`SHUTDOWN_SENTINEL`] stops admission, lets in-flight jobs finish
//!   (every stage is checkpointed regardless), writes a final manifest
//!   and status, and returns. A `kill -9` at any instant instead
//!   resumes through the PR 8 checkpoint path on the next start:
//!   inputs stay in the watch directory until their job reaches a
//!   terminal state, so nothing is ever lost or duplicated.
//! - **Observable health** — every poll emits a `serve.heartbeat`
//!   qobs event and atomically rewrites `status.json` (one flat JSON
//!   object; see `docs/observability.md`), rendered by
//!   `tetrislock report --serve`.
//!
//! The idle loop sleeps `poll_ms` between directory scans — idle CPU is
//! polling-bounded by construction, never a busy-spin.

use crate::batch::{self, JobFailure, JobOutcome};
use crate::job::{load_checkpoint, save_checkpoint, JobConfig, JobState};
use crate::retry::{CircuitBreaker, RetryPolicy};
use qcir::{persist, Circuit};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

static SERVE_ADMITTED: qobs::Counter = qobs::Counter::new("serve.admitted");
static SERVE_COMPLETED: qobs::Counter = qobs::Counter::new("serve.completed");
static SERVE_QUARANTINED: qobs::Counter = qobs::Counter::new("serve.quarantined");
static SERVE_CANCELLED: qobs::Counter = qobs::Counter::new("serve.cancelled");
static SERVE_RETRIES: qobs::Counter = qobs::Counter::new("serve.retries");

/// File name that, when dropped into the watch directory, triggers a
/// graceful drain: stop admitting, finish in-flight jobs, write the
/// final manifest and status, exit cleanly.
pub const SHUTDOWN_SENTINEL: &str = "shutdown";

/// Suffix of a cancellation sentinel: dropping `<id>.cancel` into the
/// watch directory cancels job `<id>` (queued or in flight).
pub const CANCEL_SUFFIX: &str = ".cancel";

/// Name of the atomically-rewritten health file in the output
/// directory (one flat JSON object per the schema in
/// `docs/observability.md`).
pub const STATUS_FILE: &str = "status.json";

/// Subdirectory of the watch directory holding consumed inputs.
pub const DONE_DIR: &str = "done";

/// Subdirectory of the watch directory holding quarantined inputs and
/// their serialized [`FailureReport`]s.
pub const FAILED_DIR: &str = "failed";

/// Subdirectory of the watch directory holding cancelled inputs.
pub const CANCELLED_DIR: &str = "cancelled";

/// Default worker thread count.
pub const DEFAULT_WORKERS: usize = 2;

/// Default intake poll interval in milliseconds (idle CPU bound).
pub const DEFAULT_POLL_MS: u64 = 100;

/// Default stability window in milliseconds: an input is admitted only
/// after its length and mtime have been unchanged this long.
pub const DEFAULT_STABILITY_MS: u64 = 300;

/// Default per-stage wall-clock timeout in milliseconds.
pub const DEFAULT_STAGE_TIMEOUT_MS: u64 = 120_000;

/// Priority assigned to inputs without a `p<k>--` prefix. Lower runs
/// first.
pub const DEFAULT_PRIORITY: u32 = 100;

/// Version of the `status.json` schema.
pub const STATUS_SCHEMA_VERSION: u64 = 1;

/// Serve daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory watched for intake files and sentinels.
    pub watch_dir: PathBuf,
    /// Directory for job checkpoints (created if missing).
    pub jobs_dir: PathBuf,
    /// Directory for restored outputs, the manifest, and `status.json`.
    pub out_dir: PathBuf,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Intake poll interval in milliseconds.
    pub poll_ms: u64,
    /// Input stability window in milliseconds.
    pub stability_ms: u64,
    /// Per-stage wall-clock timeout in milliseconds.
    pub stage_timeout_ms: u64,
    /// Retry/backoff/quarantine policy.
    pub retry: RetryPolicy,
    /// Pipeline parameters shared by every admitted job.
    pub job: JobConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            watch_dir: PathBuf::from("tlk-watch"),
            jobs_dir: PathBuf::from("tlk-jobs"),
            out_dir: PathBuf::from("tlk-out"),
            workers: DEFAULT_WORKERS,
            poll_ms: DEFAULT_POLL_MS,
            stability_ms: DEFAULT_STABILITY_MS,
            stage_timeout_ms: DEFAULT_STAGE_TIMEOUT_MS,
            retry: RetryPolicy::default(),
            job: JobConfig::default(),
        }
    }
}

/// Why the serve daemon could not start or keep running. Per-job
/// failures are never raised — they are retried, quarantined, and
/// reported; this error is for the daemon's own environment.
#[derive(Debug)]
pub enum ServeError {
    /// The watch path exists but is not a directory.
    NotADirectory(PathBuf),
    /// A directory could not be created or a daemon-level file could
    /// not be written.
    Io {
        /// The path being touched.
        path: PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NotADirectory(p) => {
                write!(f, "watch path {} is not a directory", p.display())
            }
            ServeError::Io { path, source } => write!(f, "{}: {source}", path.display()),
        }
    }
}

impl std::error::Error for ServeError {}

/// Failure taxonomy recorded in a [`FailureReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The input file did not parse; quarantined at intake.
    Poisoned,
    /// The strike budget was spent on repeated stage failures/panics.
    CrashLoop,
    /// The strike budget was spent and the final strike was a
    /// wall-clock stage timeout.
    Timeout,
    /// An existing checkpoint was written under a different job
    /// configuration; refusing to silently recompute.
    ConfigMismatch,
}

impl FailureKind {
    /// Stable lowercase name (used in reports and diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Poisoned => "poisoned",
            FailureKind::CrashLoop => "crash_loop",
            FailureKind::Timeout => "timeout",
            FailureKind::ConfigMismatch => "config_mismatch",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One failed stage attempt inside a [`FailureReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttemptRecord {
    /// The stage that failed.
    pub stage: String,
    /// What went wrong (error text, panic message, or "timed out").
    pub message: String,
    /// Backoff slept after this attempt, in milliseconds.
    pub backoff_ms: u64,
}

/// The typed quarantine record serialized (via [`qcir::persist`]) to
/// `failed/<id>.failure` when a job is quarantined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureReport {
    /// The quarantined job.
    pub id: String,
    /// Why it was quarantined.
    pub kind: FailureKind,
    /// The final (deciding) failure message.
    pub message: String,
    /// Every failed attempt, in order.
    pub attempts: Vec<AttemptRecord>,
}

/// Path of the serialized [`FailureReport`] for job `id`.
pub fn failure_report_path(watch_dir: &Path, id: &str) -> PathBuf {
    watch_dir.join(FAILED_DIR).join(format!("{id}.failure"))
}

/// What a completed (drained) serve run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs admitted from the watch directory.
    pub admitted: u64,
    /// Jobs that ran to a verdict and an emitted output.
    pub completed: u64,
    /// Jobs quarantined to `failed/`.
    pub quarantined: u64,
    /// Jobs cancelled via sentinel.
    pub cancelled: u64,
    /// Stage attempts that failed and were retried (or quarantined).
    pub retries: u64,
    /// Intake polls performed (idle CPU bound: each poll sleeps).
    pub polls: u64,
    /// Path of the final manifest.
    pub manifest_path: PathBuf,
    /// Path of the last-written status file.
    pub status_path: PathBuf,
}

/// Splits an intake file name into `(priority, id)`. A `p<k>--` prefix
/// sets the priority (lower runs first); otherwise
/// [`DEFAULT_PRIORITY`]. Returns `None` for non-intake names
/// (wrong extension, empty id, or a `.restored` output stem).
pub fn parse_intake_name(file_name: &str) -> Option<(u32, String)> {
    let stem = file_name
        .strip_suffix(".real")
        .or_else(|| file_name.strip_suffix(".qasm"))?;
    if stem.is_empty() || stem.ends_with(".restored") {
        return None;
    }
    let (priority, id) = match stem.strip_prefix('p').and_then(|rest| {
        let (digits, id) = rest.split_once("--")?;
        let k: u32 = digits.parse().ok()?;
        Some((k, id))
    }) {
        Some((k, id)) => (k, id),
        None => (DEFAULT_PRIORITY, stem),
    };
    if id.is_empty() {
        return None;
    }
    Some((priority, id.to_string()))
}

/// FNV-1a 64-bit hash — derives the per-job jitter seed from the job
/// id, so retry schedules are a pure function of `(id, config)`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A queued, admitted job. Ordering is min-priority-first with FIFO
/// admission-order tiebreak (via the monotone `seq`).
struct Queued {
    priority: u32,
    seq: u64,
    id: String,
    input_path: PathBuf,
    circuit: Circuit,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    // Reversed so BinaryHeap (a max-heap) pops the lowest
    // (priority, seq) first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .priority
            .cmp(&self.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Queue state guarded by one mutex; the condvar wakes workers on
/// pushes and on drain.
struct QueueState {
    heap: BinaryHeap<Queued>,
    in_flight: usize,
    draining: bool,
}

/// Monotone counters exposed through `status.json` and the summary.
#[derive(Default)]
struct Gauges {
    admitted: AtomicU64,
    completed: AtomicU64,
    quarantined: AtomicU64,
    cancelled: AtomicU64,
    retries: AtomicU64,
    polls: AtomicU64,
}

/// Everything the intake loop and the workers share.
struct Shared {
    queue: Mutex<QueueState>,
    wake: Condvar,
    /// Active jobs (queued or in flight) → their cancellation flag.
    /// Doubles as the admission guard: an id present here is never
    /// re-admitted.
    cancels: Mutex<BTreeMap<String, Arc<AtomicBool>>>,
    /// Manifest rows (id → status/tier/output), merged from any
    /// existing manifest at startup and rewritten atomically on every
    /// terminal transition.
    manifest: Mutex<BTreeMap<String, (String, String, String)>>,
    gauges: Gauges,
}

/// The outcome of one stage attempt (run on a detached thread so the
/// worker can enforce a wall-clock timeout).
enum AttemptOutcome {
    /// The stage transition succeeded; this is the advanced state.
    Advanced(Box<JobState>),
    /// The stage returned an error.
    Failed(String),
    /// The stage panicked.
    Panicked(String),
    /// The stage exceeded the wall-clock budget (the attempt thread is
    /// abandoned; its eventual result is discarded).
    TimedOut,
}

/// Runs the serve daemon until drained. Blocks the calling thread; the
/// intake loop runs here while `config.workers` worker threads consume
/// the queue.
///
/// # Errors
///
/// [`ServeError`] only for environment failures (watch path not a
/// directory, directories that cannot be created). Per-job failures
/// are retried and quarantined, never raised.
pub fn run_serve(config: &ServeConfig) -> Result<ServeSummary, ServeError> {
    if config.watch_dir.exists() && !config.watch_dir.is_dir() {
        return Err(ServeError::NotADirectory(config.watch_dir.clone()));
    }
    let done_dir = config.watch_dir.join(DONE_DIR);
    let failed_dir = config.watch_dir.join(FAILED_DIR);
    let cancelled_dir = config.watch_dir.join(CANCELLED_DIR);
    for dir in [
        &config.watch_dir,
        &config.jobs_dir,
        &config.out_dir,
        &done_dir,
        &failed_dir,
        &cancelled_dir,
    ] {
        std::fs::create_dir_all(dir).map_err(|source| ServeError::Io {
            path: dir.clone(),
            source,
        })?;
    }
    batch::sweep_tmp_debris(&[&config.jobs_dir, &config.out_dir]);

    let manifest_path = config.out_dir.join(batch::MANIFEST_FILE);
    let status_path = config.out_dir.join(STATUS_FILE);
    let shared = Shared {
        queue: Mutex::new(QueueState {
            heap: BinaryHeap::new(),
            in_flight: 0,
            draining: false,
        }),
        wake: Condvar::new(),
        cancels: Mutex::new(BTreeMap::new()),
        manifest: Mutex::new(load_manifest_rows(&manifest_path)),
        gauges: Gauges::default(),
    };

    let span = qobs::span("serve.run")
        .attr("watch", config.watch_dir.display().to_string())
        .attr("workers", config.workers.max(1));

    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| worker_loop(config, &shared, &manifest_path));
        }
        intake_loop(config, &shared, &status_path);
    });

    // Final manifest + status after every worker has stopped.
    write_manifest_from(&shared, &manifest_path);
    write_status(config, &shared, &status_path, true);
    let g = &shared.gauges;
    let summary = ServeSummary {
        admitted: g.admitted.load(Ordering::Relaxed),
        completed: g.completed.load(Ordering::Relaxed),
        quarantined: g.quarantined.load(Ordering::Relaxed),
        cancelled: g.cancelled.load(Ordering::Relaxed),
        retries: g.retries.load(Ordering::Relaxed),
        polls: g.polls.load(Ordering::Relaxed),
        manifest_path,
        status_path,
    };
    let _span = span
        .attr("admitted", summary.admitted)
        .attr("completed", summary.completed)
        .attr("quarantined", summary.quarantined);
    Ok(summary)
}

/// The intake loop: one pass per poll — sentinels first (shutdown,
/// cancels), then stability-gated admissions, then status/heartbeat,
/// then sleep. Returns once drain is requested.
fn intake_loop(config: &ServeConfig, shared: &Shared, status_path: &Path) {
    // file name → (len, mtime, instant of last observed change).
    let mut stability: BTreeMap<String, (u64, Option<SystemTime>, Instant)> = BTreeMap::new();
    let mut seq: u64 = 0;
    loop {
        shared.gauges.polls.fetch_add(1, Ordering::Relaxed);
        let mut drain = false;
        let mut entries: Vec<(String, PathBuf)> = Vec::new();
        if let Ok(rd) = std::fs::read_dir(&config.watch_dir) {
            for entry in rd.flatten() {
                if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                    continue;
                }
                if let Some(name) = entry.file_name().to_str() {
                    entries.push((name.to_string(), entry.path()));
                }
            }
        }
        entries.sort();

        // Sentinels before admissions: a shutdown or cancel dropped in
        // the same poll as an input wins.
        for (name, path) in &entries {
            if name == SHUTDOWN_SENTINEL {
                let _ = std::fs::remove_file(path);
                drain = true;
            } else if let Some(id) = name.strip_suffix(CANCEL_SUFFIX) {
                handle_cancel(config, shared, id, path);
            }
        }
        if drain {
            qobs::event("serve.drain", &[]);
            let mut q = shared.queue.lock().expect("queue poisoned");
            q.draining = true;
            drop(q);
            shared.wake.notify_all();
            write_status(config, shared, status_path, true);
            return;
        }

        for (name, path) in &entries {
            let Some((priority, id)) = parse_intake_name(name) else {
                continue;
            };
            if shared
                .cancels
                .lock()
                .expect("cancels poisoned")
                .contains_key(&id)
            {
                continue; // already queued or in flight
            }
            if !is_stable(&mut stability, name, path, config.stability_ms) {
                continue;
            }
            stability.remove(name);
            match read_circuit(path) {
                Ok(circuit) => {
                    seq += 1;
                    let flag = Arc::new(AtomicBool::new(false));
                    shared
                        .cancels
                        .lock()
                        .expect("cancels poisoned")
                        .insert(id.clone(), flag);
                    SERVE_ADMITTED.incr();
                    shared.gauges.admitted.fetch_add(1, Ordering::Relaxed);
                    qobs::event(
                        "serve.admitted",
                        &[
                            ("job", qobs::AttrValue::from(id.as_str())),
                            ("priority", qobs::AttrValue::from(u64::from(priority))),
                        ],
                    );
                    let mut q = shared.queue.lock().expect("queue poisoned");
                    q.heap.push(Queued {
                        priority,
                        seq,
                        id,
                        input_path: path.clone(),
                        circuit,
                    });
                    drop(q);
                    shared.wake.notify_one();
                }
                Err(message) => {
                    quarantine(
                        config,
                        shared,
                        &id,
                        path,
                        FailureReport {
                            id: id.clone(),
                            kind: FailureKind::Poisoned,
                            message,
                            attempts: Vec::new(),
                        },
                    );
                }
            }
        }
        stability.retain(|name, _| entries.iter().any(|(n, _)| n == name));

        write_status(config, shared, status_path, false);
        std::thread::sleep(Duration::from_millis(config.poll_ms.max(1)));
    }
}

/// One stability observation: returns `true` when the file's length
/// and mtime have been unchanged for the window.
fn is_stable(
    stability: &mut BTreeMap<String, (u64, Option<SystemTime>, Instant)>,
    name: &str,
    path: &Path,
    stability_ms: u64,
) -> bool {
    let Ok(meta) = std::fs::metadata(path) else {
        return false;
    };
    let len = meta.len();
    let mtime = meta.modified().ok();
    let now = Instant::now();
    match stability.get_mut(name) {
        Some((seen_len, seen_mtime, since)) => {
            if *seen_len != len || *seen_mtime != mtime {
                *seen_len = len;
                *seen_mtime = mtime;
                *since = now;
                false
            } else {
                now.duration_since(*since) >= Duration::from_millis(stability_ms)
            }
        }
        None => {
            stability.insert(name.to_string(), (len, mtime, now));
            false
        }
    }
}

/// Parses an intake file by extension (`.real` or `.qasm`).
fn read_circuit(path: &Path) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable input: {e}"))?;
    let parsed = match path.extension().and_then(|e| e.to_str()) {
        Some("real") => qcir::real::from_real(&text),
        Some("qasm") => qcir::qasm::from_qasm(&text),
        other => return Err(format!("unsupported extension {other:?}")),
    };
    parsed.map_err(|e| e.to_string())
}

/// Applies a `<id>.cancel` sentinel: flags an active job, or moves a
/// not-yet-admitted input straight to `cancelled/`. The sentinel is
/// consumed in either case (and also when there is nothing to cancel).
fn handle_cancel(config: &ServeConfig, shared: &Shared, id: &str, sentinel: &Path) {
    let cancels = shared.cancels.lock().expect("cancels poisoned");
    if let Some(flag) = cancels.get(id) {
        flag.store(true, Ordering::SeqCst);
        drop(cancels);
        let _ = std::fs::remove_file(sentinel);
        return;
    }
    drop(cancels);
    // Not active: cancel pending input files (plain or
    // priority-prefixed) for the same id before they are admitted.
    if let Ok(rd) = std::fs::read_dir(&config.watch_dir) {
        for entry in rd.flatten() {
            let Some(name) = entry.file_name().to_str().map(String::from) else {
                continue;
            };
            if let Some((_, parsed_id)) = parse_intake_name(&name) {
                if parsed_id == id {
                    move_into(&entry.path(), &config.watch_dir.join(CANCELLED_DIR));
                    record_cancelled(shared, id);
                }
            }
        }
    }
    let _ = std::fs::remove_file(sentinel);
}

/// Counts a cancellation (gauge + qobs) without touching the registry.
fn record_cancelled(shared: &Shared, id: &str) {
    SERVE_CANCELLED.incr();
    shared.gauges.cancelled.fetch_add(1, Ordering::Relaxed);
    qobs::event("serve.cancelled", &[("job", qobs::AttrValue::from(id))]);
}

/// Moves `path` into `dir`, keeping its file name. Best-effort: serve
/// must keep running even if the filesystem fights back.
fn move_into(path: &Path, dir: &Path) {
    if let Some(name) = path.file_name() {
        let _ = std::fs::rename(path, dir.join(name));
    }
}

/// Worker: pop highest-priority job, drive it to a terminal state,
/// repeat; exits when drain is requested and the queue is released.
fn worker_loop(config: &ServeConfig, shared: &Shared, manifest_path: &Path) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if q.draining {
                    // Abandon queued-but-unstarted jobs: their inputs
                    // stay in the watch dir, so a later serve run
                    // admits them again — drained, not lost.
                    return;
                }
                if let Some(job) = q.heap.pop() {
                    q.in_flight += 1;
                    break job;
                }
                q = shared.wake.wait(q).expect("queue poisoned");
            }
        };
        run_serve_job(config, shared, manifest_path, job);
        let mut q = shared.queue.lock().expect("queue poisoned");
        q.in_flight -= 1;
    }
}

/// Drives one admitted job to a terminal state: completed (output
/// emitted, input moved to `done/`), cancelled, or quarantined.
fn run_serve_job(config: &ServeConfig, shared: &Shared, manifest_path: &Path, job: Queued) {
    let _span = qobs::span("serve.job")
        .attr("job", job.id.as_str())
        .attr("priority", u64::from(job.priority));
    let cancel_flag = shared
        .cancels
        .lock()
        .expect("cancels poisoned")
        .get(&job.id)
        .cloned()
        .unwrap_or_default();

    let mut state = match initial_state(config, shared, &job) {
        Some(state) => state,
        None => return, // terminal at admission (mismatch quarantine / already done)
    };
    let mut breaker = CircuitBreaker::new(config.retry.max_strikes);
    let jitter_seed = fnv1a64(job.id.as_bytes()) ^ config.job.seed;
    let mut attempts: Vec<AttemptRecord> = Vec::new();

    loop {
        if cancel_flag.load(Ordering::SeqCst) {
            move_into(&job.input_path, &config.watch_dir.join(CANCELLED_DIR));
            set_manifest_row(
                shared,
                &job.id,
                (
                    "CANCELLED".to_string(),
                    "-".to_string(),
                    "cancelled via sentinel".to_string(),
                ),
            );
            write_manifest_from(shared, manifest_path);
            record_cancelled(shared, &job.id);
            shared
                .cancels
                .lock()
                .expect("cancels poisoned")
                .remove(&job.id);
            return;
        }
        if state.is_done() {
            finalize_completed(config, shared, manifest_path, &job, &state);
            return;
        }

        let stage_name = state.stage.name().to_string();
        let outcome = attempt_stage(config, &state);
        match outcome {
            AttemptOutcome::Advanced(next) => {
                state = *next;
                if let Err(err) = save_checkpoint(&config.jobs_dir, &state) {
                    // A checkpoint that cannot be written is a strike
                    // like any other failure: retry, then quarantine.
                    strike(
                        config,
                        shared,
                        &mut breaker,
                        jitter_seed,
                        &mut attempts,
                        &stage_name,
                        err.to_string(),
                    );
                    if breaker.is_open() {
                        quarantine_job(
                            config,
                            shared,
                            manifest_path,
                            &job,
                            FailureKind::CrashLoop,
                            attempts,
                        );
                        return;
                    }
                    state = reload_state(config, &job, &state);
                }
            }
            AttemptOutcome::Failed(message) | AttemptOutcome::Panicked(message) => {
                strike(
                    config,
                    shared,
                    &mut breaker,
                    jitter_seed,
                    &mut attempts,
                    &stage_name,
                    message,
                );
                if breaker.is_open() {
                    quarantine_job(
                        config,
                        shared,
                        manifest_path,
                        &job,
                        FailureKind::CrashLoop,
                        attempts,
                    );
                    return;
                }
                state = reload_state(config, &job, &state);
            }
            AttemptOutcome::TimedOut => {
                strike(
                    config,
                    shared,
                    &mut breaker,
                    jitter_seed,
                    &mut attempts,
                    &stage_name,
                    format!("stage exceeded {} ms wall clock", config.stage_timeout_ms),
                );
                if breaker.is_open() {
                    quarantine_job(
                        config,
                        shared,
                        manifest_path,
                        &job,
                        FailureKind::Timeout,
                        attempts,
                    );
                    return;
                }
                state = reload_state(config, &job, &state);
            }
        }
    }
}

/// Builds the job's starting state: a matching checkpoint resumes, a
/// config-mismatched checkpoint quarantines, a checkpoint for
/// different input bytes (or a corrupt one) is discarded, and a Done
/// checkpoint with its output present finalizes immediately.
/// Returns `None` when the job reached a terminal state here.
fn initial_state(config: &ServeConfig, shared: &Shared, job: &Queued) -> Option<JobState> {
    match load_checkpoint(&config.jobs_dir, &job.id) {
        Ok(Some(state)) => {
            if state.config != config.job {
                quarantine(
                    config,
                    shared,
                    &job.id,
                    &job.input_path,
                    FailureReport {
                        id: job.id.clone(),
                        kind: FailureKind::ConfigMismatch,
                        message: format!(
                            "checkpoint for {} was written under a different job configuration",
                            job.id
                        ),
                        attempts: Vec::new(),
                    },
                );
                shared
                    .cancels
                    .lock()
                    .expect("cancels poisoned")
                    .remove(&job.id);
                return None;
            }
            if qcir::qasm::to_qasm(&state.original) != qcir::qasm::to_qasm(&job.circuit) {
                // The producer replaced the input: the old checkpoint
                // is for a different circuit. Start fresh.
                return Some(JobState::new(
                    job.id.clone(),
                    job.circuit.clone(),
                    config.job.clone(),
                ));
            }
            Some(state)
        }
        // Corrupt beyond both generations: start fresh (the first
        // save rotates the debris away).
        Err(_) | Ok(None) => Some(JobState::new(
            job.id.clone(),
            job.circuit.clone(),
            config.job.clone(),
        )),
    }
}

/// Reloads the last good checkpoint after a failed attempt (fresh
/// state if there is none).
fn reload_state(config: &ServeConfig, job: &Queued, current: &JobState) -> JobState {
    match load_checkpoint(&config.jobs_dir, &job.id) {
        Ok(Some(state)) if state.config == current.config => state,
        _ => JobState::new(job.id.clone(), job.circuit.clone(), current.config.clone()),
    }
}

/// Runs one `advance` under the wall-clock budget on a detached
/// thread. On timeout the thread is abandoned: its eventual result is
/// discarded (the channel send fails) and any late output write is an
/// atomic rename of identical bytes, so it cannot corrupt anything.
fn attempt_stage(config: &ServeConfig, state: &JobState) -> AttemptOutcome {
    let (tx, rx) = mpsc::channel();
    let mut moved = state.clone();
    let out_dir = config.out_dir.clone();
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| {
            moved.advance(&out_dir).map(|()| moved.clone())
        }));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(Duration::from_millis(config.stage_timeout_ms.max(1))) {
        Ok(Ok(Ok(next))) => AttemptOutcome::Advanced(Box::new(next)),
        Ok(Ok(Err(err))) => AttemptOutcome::Failed(err.to_string()),
        Ok(Err(payload)) => AttemptOutcome::Panicked(batch::panic_message(payload.as_ref())),
        Err(RecvTimeoutError::Timeout) => AttemptOutcome::TimedOut,
        Err(RecvTimeoutError::Disconnected) => {
            AttemptOutcome::Panicked("attempt thread vanished".to_string())
        }
    }
}

/// Records one failed attempt: counts the retry, appends the attempt
/// record, advances the breaker, and (while the breaker stays closed)
/// sleeps the deterministic backoff.
fn strike(
    config: &ServeConfig,
    shared: &Shared,
    breaker: &mut CircuitBreaker,
    jitter_seed: u64,
    attempts: &mut Vec<AttemptRecord>,
    stage: &str,
    message: String,
) {
    SERVE_RETRIES.incr();
    shared.gauges.retries.fetch_add(1, Ordering::Relaxed);
    breaker.record_failure();
    let backoff_ms = if breaker.is_open() {
        0 // quarantining; no point sleeping
    } else {
        config
            .retry
            .delay_ms(jitter_seed, breaker.strikes().saturating_sub(1))
    };
    qobs::event(
        "serve.retry",
        &[
            ("stage", qobs::AttrValue::from(stage)),
            (
                "strikes",
                qobs::AttrValue::from(u64::from(breaker.strikes())),
            ),
            ("backoff_ms", qobs::AttrValue::from(backoff_ms)),
        ],
    );
    attempts.push(AttemptRecord {
        stage: stage.to_string(),
        message,
        backoff_ms,
    });
    if backoff_ms > 0 {
        std::thread::sleep(Duration::from_millis(backoff_ms));
    }
}

/// Quarantines an in-flight job after the breaker opened.
fn quarantine_job(
    config: &ServeConfig,
    shared: &Shared,
    manifest_path: &Path,
    job: &Queued,
    kind: FailureKind,
    attempts: Vec<AttemptRecord>,
) {
    let message = attempts
        .last()
        .map(|a| a.message.clone())
        .unwrap_or_else(|| "no attempts recorded".to_string());
    quarantine(
        config,
        shared,
        &job.id,
        &job.input_path,
        FailureReport {
            id: job.id.clone(),
            kind,
            message,
            attempts,
        },
    );
    write_manifest_from(shared, manifest_path);
    shared
        .cancels
        .lock()
        .expect("cancels poisoned")
        .remove(&job.id);
}

/// The shared quarantine path: serializes the [`FailureReport`] to
/// `failed/<id>.failure`, moves the input file to `failed/`, records
/// the manifest row, and counts it.
fn quarantine(
    config: &ServeConfig,
    shared: &Shared,
    id: &str,
    input_path: &Path,
    report: FailureReport,
) {
    let report_path = failure_report_path(&config.watch_dir, id);
    let _ = persist::save(&report_path, &report);
    move_into(input_path, &config.watch_dir.join(FAILED_DIR));
    SERVE_QUARANTINED.incr();
    shared.gauges.quarantined.fetch_add(1, Ordering::Relaxed);
    qobs::event(
        "serve.quarantined",
        &[
            ("job", qobs::AttrValue::from(id)),
            ("kind", qobs::AttrValue::from(report.kind.name())),
        ],
    );
    set_manifest_row(
        shared,
        id,
        (
            "QUARANTINED".to_string(),
            "-".to_string(),
            format!(
                "{}: {}",
                report.kind,
                report.message.replace(['\t', '\n'], " ")
            ),
        ),
    );
}

/// Terminal success: manifest row from the verdict, input moved to
/// `done/`, registry entry released (in that order, so intake can
/// never re-admit a finishing job).
fn finalize_completed(
    config: &ServeConfig,
    shared: &Shared,
    manifest_path: &Path,
    job: &Queued,
    state: &JobState,
) {
    let outcome = JobOutcome {
        id: job.id.clone(),
        steps_done: state.steps_done,
        resumed: false,
        result: state
            .verdict
            .clone()
            .ok_or_else(|| JobFailure::Error("done without verdict".to_string())),
    };
    set_manifest_row(shared, &job.id, batch::manifest_row(&outcome));
    write_manifest_from(shared, manifest_path);
    move_into(&job.input_path, &config.watch_dir.join(DONE_DIR));
    shared
        .cancels
        .lock()
        .expect("cancels poisoned")
        .remove(&job.id);
    SERVE_COMPLETED.incr();
    shared.gauges.completed.fetch_add(1, Ordering::Relaxed);
    qobs::event(
        "serve.completed",
        &[("job", qobs::AttrValue::from(job.id.as_str()))],
    );
}

/// Replaces (or inserts) one manifest row.
fn set_manifest_row(shared: &Shared, id: &str, row: (String, String, String)) {
    shared
        .manifest
        .lock()
        .expect("manifest poisoned")
        .insert(id.to_string(), row);
}

/// Atomically rewrites the manifest from the shared row map.
fn write_manifest_from(shared: &Shared, manifest_path: &Path) {
    let rows = shared.manifest.lock().expect("manifest poisoned");
    let text = batch::render_manifest(
        rows.iter()
            .map(|(id, (s, t, o))| (id.as_str(), s.as_str(), t.as_str(), o.as_str())),
    );
    drop(rows);
    let _ = batch::write_manifest_text(manifest_path, &text);
}

/// Parses an existing manifest back into the row map (serve restarts
/// must not forget earlier terminal states).
fn load_manifest_rows(path: &Path) -> BTreeMap<String, (String, String, String)> {
    let mut rows = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return rows;
    };
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        if let (Some(id), Some(status), Some(tier), Some(output)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        {
            rows.insert(
                id.to_string(),
                (status.to_string(), tier.to_string(), output.to_string()),
            );
        }
    }
    rows
}

/// Atomically rewrites `status.json` (one flat JSON object line) and
/// emits the `serve.heartbeat` event.
fn write_status(config: &ServeConfig, shared: &Shared, status_path: &Path, draining: bool) {
    let (queue_depth, in_flight) = {
        let q = shared.queue.lock().expect("queue poisoned");
        (q.heap.len() as u64, q.in_flight as u64)
    };
    let g = &shared.gauges;
    let admitted = g.admitted.load(Ordering::Relaxed);
    let completed = g.completed.load(Ordering::Relaxed);
    let quarantined = g.quarantined.load(Ordering::Relaxed);
    let cancelled = g.cancelled.load(Ordering::Relaxed);
    let retries = g.retries.load(Ordering::Relaxed);
    let polls = g.polls.load(Ordering::Relaxed);

    let mut obj = qobs::json::Obj::new("serve_status");
    obj.field_u64("schema_version", STATUS_SCHEMA_VERSION);
    obj.field_u64("workers", config.workers.max(1) as u64);
    obj.field_u64("queue_depth", queue_depth);
    obj.field_u64("in_flight", in_flight);
    obj.field_u64("admitted", admitted);
    obj.field_u64("completed", completed);
    obj.field_u64("quarantined", quarantined);
    obj.field_u64("cancelled", cancelled);
    obj.field_u64("retries", retries);
    obj.field_u64("polls", polls);
    obj.field_bool("draining", draining);
    let line = obj.finish();

    let tmp = persist::tmp_path(status_path);
    let _ =
        std::fs::write(&tmp, format!("{line}\n")).and_then(|()| std::fs::rename(&tmp, status_path));

    qobs::event(
        "serve.heartbeat",
        &[
            ("queue_depth", qobs::AttrValue::from(queue_depth)),
            ("in_flight", qobs::AttrValue::from(in_flight)),
            ("retries", qobs::AttrValue::from(retries)),
            ("quarantined", qobs::AttrValue::from(quarantined)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intake_names_parse() {
        assert_eq!(
            parse_intake_name("alpha.real"),
            Some((DEFAULT_PRIORITY, "alpha".to_string()))
        );
        assert_eq!(
            parse_intake_name("p5--hot.qasm"),
            Some((5, "hot".to_string()))
        );
        assert_eq!(
            parse_intake_name("p007--x.real"),
            Some((7, "x".to_string()))
        );
        // A bare `p--` or non-numeric prefix is just an id.
        assert_eq!(
            parse_intake_name("pxy--z.real"),
            Some((DEFAULT_PRIORITY, "pxy--z".to_string()))
        );
        assert_eq!(parse_intake_name("notes.txt"), None);
        assert_eq!(parse_intake_name(".real"), None);
        assert_eq!(parse_intake_name("p5--.real"), None);
        assert_eq!(parse_intake_name("alpha.restored.qasm"), None);
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let mk = |priority, seq, id: &str| Queued {
            priority,
            seq,
            id: id.to_string(),
            input_path: PathBuf::new(),
            circuit: Circuit::new(1),
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(100, 1, "slow"));
        heap.push(mk(5, 3, "hot_b"));
        heap.push(mk(5, 2, "hot_a"));
        let order: Vec<String> = std::iter::from_fn(|| heap.pop().map(|q| q.id)).collect();
        assert_eq!(order, ["hot_a", "hot_b", "slow"]);
    }

    #[test]
    fn failure_report_round_trips_through_persist() {
        let dir = std::env::temp_dir().join(format!("tlk_serve_fr_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report = FailureReport {
            id: "poison".to_string(),
            kind: FailureKind::CrashLoop,
            message: "stage verify: boom".to_string(),
            attempts: vec![AttemptRecord {
                stage: "verify".to_string(),
                message: "boom".to_string(),
                backoff_ms: 50,
            }],
        };
        let path = dir.join("poison.failure");
        persist::save(&path, &report).unwrap();
        let back: FailureReport = persist::load(&path).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn manifest_rows_survive_reload() {
        let dir = std::env::temp_dir().join(format!("tlk_serve_mf_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.txt");
        let mut rows = BTreeMap::new();
        rows.insert(
            "a".to_string(),
            (
                "equivalent".to_string(),
                "tableau".to_string(),
                "a.restored.qasm".to_string(),
            ),
        );
        rows.insert(
            "b".to_string(),
            (
                "QUARANTINED".to_string(),
                "-".to_string(),
                "poisoned: bad gate".to_string(),
            ),
        );
        let text = batch::render_manifest(
            rows.iter()
                .map(|(id, (s, t, o))| (id.as_str(), s.as_str(), t.as_str(), o.as_str())),
        );
        batch::write_manifest_text(&path, &text).unwrap();
        assert_eq!(load_manifest_rows(&path), rows);
    }

    #[test]
    fn watch_path_must_be_a_directory() {
        let base = std::env::temp_dir().join(format!("tlk_serve_nd_{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        let file = base.join("a_file");
        std::fs::write(&file, "x").unwrap();
        let config = ServeConfig {
            watch_dir: file.clone(),
            jobs_dir: base.join("jobs"),
            out_dir: base.join("out"),
            ..ServeConfig::default()
        };
        match run_serve(&config) {
            Err(ServeError::NotADirectory(p)) => assert_eq!(p, file),
            other => panic!("expected NotADirectory, got {other:?}"),
        }
    }

    /// End-to-end in-process smoke: two inputs (one prioritized), one
    /// poisoned file, one cancel, then drain.
    #[test]
    fn serve_processes_quarantines_and_drains() {
        let base = std::env::temp_dir().join(format!("tlk_serve_e2e_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let config = ServeConfig {
            watch_dir: base.join("watch"),
            jobs_dir: base.join("jobs"),
            out_dir: base.join("out"),
            workers: 2,
            poll_ms: 10,
            stability_ms: 30,
            ..ServeConfig::default()
        };
        std::fs::create_dir_all(&config.watch_dir).unwrap();

        let mut c = Circuit::with_name(3, "gamma");
        c.x(0).cx(0, 1).ccx(0, 1, 2);
        let qasm = qcir::qasm::to_qasm(&c);
        std::fs::write(config.watch_dir.join("gamma.qasm"), &qasm).unwrap();
        std::fs::write(config.watch_dir.join("p1--rush.qasm"), &qasm).unwrap();
        std::fs::write(config.watch_dir.join("poison.qasm"), "OPENQASM 2.0;\nqreg").unwrap();

        let watch = config.watch_dir.clone();
        let out = config.out_dir.clone();
        let stopper = std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(120);
            // Wait for both outputs and the quarantine, then drain.
            loop {
                let done = out.join("gamma.restored.qasm").exists()
                    && out.join("rush.restored.qasm").exists()
                    && failure_report_path(&watch, "poison").exists();
                if done || Instant::now() > deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            std::fs::write(watch.join(SHUTDOWN_SENTINEL), "").unwrap();
        });

        let summary = run_serve(&config).unwrap();
        stopper.join().unwrap();

        assert_eq!(summary.admitted, 2, "{summary:?}");
        assert_eq!(summary.completed, 2, "{summary:?}");
        assert_eq!(summary.quarantined, 1, "{summary:?}");
        let report: FailureReport =
            persist::load(&failure_report_path(&config.watch_dir, "poison")).unwrap();
        assert_eq!(report.kind, FailureKind::Poisoned);
        // Inputs reached their terminal directories.
        assert!(config.watch_dir.join(DONE_DIR).join("gamma.qasm").exists());
        assert!(config
            .watch_dir
            .join(FAILED_DIR)
            .join("poison.qasm")
            .exists());
        // status.json is one flat JSON object.
        let status = std::fs::read_to_string(&summary.status_path).unwrap();
        let parsed = qobs::json::parse_line(status.trim()).unwrap();
        assert_eq!(parsed.get_str("type"), Some("serve_status"));
        assert_eq!(parsed.get_u64("completed"), Some(2));
        assert_eq!(parsed.get_u64("quarantined"), Some(1));
        // The manifest holds all terminal rows.
        let manifest = std::fs::read_to_string(&summary.manifest_path).unwrap();
        assert!(manifest.contains("gamma\tequivalent\t"), "{manifest}");
        assert!(
            manifest.contains("poison\tQUARANTINED\t-\tpoisoned:"),
            "{manifest}"
        );
    }
}
