//! Empirical collusion attack (validates the Eq. 1 counting model).
//!
//! The §IV-C complexity analysis counts the qubit matchings a colluding
//! pair of compilers must try to reassemble the original circuit from two
//! split segments. This module *implements* that attacker for small
//! registers: it enumerates every injective placement of the second
//! segment's wires relative to the first and tests each reassembly
//! against an oracle (functional equality with the victim design — the
//! strongest attacker, who can query the deployed circuit's behavior).
//!
//! Running it confirms two things the paper argues analytically:
//!
//! 1. the attempt count matches the Eq. 1 enumeration space, and
//! 2. many structurally valid placements exist, and without the wire
//!    maps the attacker cannot tell which — especially since the segment
//!    widths don't reveal the original register size.

use qcir::{Circuit, Qubit};
use qverify::Verifier;
use std::collections::BTreeMap;

/// One candidate reassembly: where each right-segment wire landed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// `mapping[w]` = combined-register wire hosting right wire `w`.
    pub right_to_combined: Vec<u32>,
    /// Size of the combined register tried.
    pub register: u32,
}

/// Result of a brute-force reassembly attack.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Number of candidate placements enumerated.
    pub attempts: u64,
    /// Placements whose reassembly passed the oracle.
    pub matches: Vec<Mapping>,
}

impl AttackOutcome {
    /// `true` if more than one placement passed — the attacker cannot
    /// identify the true design even after exhaustive search.
    pub fn is_ambiguous(&self) -> bool {
        self.matches.len() > 1
    }
}

/// Builds the reassembled circuit for a candidate placement: left wires
/// pinned to `0..n_left`, right wires mapped through `placement`.
///
/// Returns `None` if the placement is not injective.
pub fn reassemble(
    left: &Circuit,
    right: &Circuit,
    placement: &[u32],
    register: u32,
) -> Option<Circuit> {
    let mut seen = vec![false; register as usize];
    for &p in placement {
        if p >= register || seen[p as usize] {
            return None;
        }
        seen[p as usize] = true;
    }
    let mut out = Circuit::with_name(register, "attack_reassembly");
    for inst in left.iter() {
        out.push(inst.clone()).ok()?;
    }
    let map: BTreeMap<Qubit, Qubit> = placement
        .iter()
        .enumerate()
        .map(|(w, &p)| (Qubit::new(w as u32), Qubit::new(p)))
        .collect();
    for inst in right.iter() {
        out.push(inst.remapped(&map).ok()?).ok()?;
    }
    Some(out)
}

/// Exhaustively enumerates injective placements of `right`'s wires into a
/// register of `register` wires (left wires pinned at `0..left.num_qubits()`)
/// and tests each reassembly with `oracle`.
///
/// The oracle receives the candidate circuit; a realistic attacker would
/// compare its input/output behaviour against queries to the deployed
/// device.
///
/// # Panics
///
/// Panics if `register` is smaller than either segment (nothing to try).
pub fn brute_force_reassembly<F>(
    left: &Circuit,
    right: &Circuit,
    register: u32,
    oracle: F,
) -> AttackOutcome
where
    F: Fn(&Circuit) -> bool,
{
    assert!(
        register >= left.num_qubits() && register >= right.num_qubits(),
        "register must fit both segments"
    );
    let n_right = right.num_qubits() as usize;
    let mut attempts = 0u64;
    let mut matches = Vec::new();

    // Enumerate injective maps from right wires to the register.
    let mut placement = vec![0u32; n_right];
    let mut used = vec![false; register as usize];
    enumerate(
        0,
        register,
        &mut placement,
        &mut used,
        &mut |placement: &[u32]| {
            attempts += 1;
            if let Some(candidate) = reassemble(left, right, placement, register) {
                if oracle(&candidate) {
                    matches.push(Mapping {
                        right_to_combined: placement.to_vec(),
                        register,
                    });
                }
            }
        },
    );
    AttackOutcome { attempts, matches }
}

fn enumerate<F: FnMut(&[u32])>(
    wire: usize,
    register: u32,
    placement: &mut Vec<u32>,
    used: &mut Vec<bool>,
    visit: &mut F,
) {
    if wire == placement.len() {
        visit(placement);
        return;
    }
    for p in 0..register {
        if used[p as usize] {
            continue;
        }
        used[p as usize] = true;
        placement[wire] = p;
        enumerate(wire + 1, register, placement, used, visit);
        used[p as usize] = false;
    }
}

/// Builds the strongest oracle the model allows: functional equivalence
/// with the victim design, decided by the tiered `qverify` engine — so
/// key-discrimination loops scale past the dense-unitary cap (stimulus
/// tier for wide registers up to `qsim::statevector::MAX_QUBITS`,
/// stabilizer tableau for Clifford victims). Each oracle query replays
/// the candidate on qsim's kernel engine, so per-guess cost tracks the
/// simulator's stride/fusion/threading improvements directly.
///
/// A candidate on a different register size is never a match; anything
/// short of a definite [`qverify::Verdict::Equivalent`] counts as a
/// failed reassembly, which is the conservative reading for an attacker.
pub fn equivalence_oracle<'a>(
    victim: &'a Circuit,
    verifier: &'a Verifier,
) -> impl Fn(&Circuit) -> bool + 'a {
    move |candidate: &Circuit| verifier.check(victim, candidate).is_equivalent()
}

/// Number of injective placements of `n_right` wires into a register of
/// `register` wires — the exact attempt count [`brute_force_reassembly`]
/// performs (the falling factorial `register·(register−1)⋯`).
pub fn placement_count(register: u32, n_right: u32) -> u128 {
    let mut acc: u128 = 1;
    for i in 0..n_right as u128 {
        acc *= register as u128 - i;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obfuscate::Obfuscator;

    fn victim() -> Circuit {
        let mut c = Circuit::with_name(4, "victim");
        c.h(0).cx(0, 1).x(1).cx(1, 2).cx(2, 3).h(3);
        c
    }

    #[test]
    fn attempt_count_matches_falling_factorial() {
        let c = victim();
        let obf = Obfuscator::new().with_seed(1).obfuscate(&c);
        let split = obf.split(2);
        let outcome =
            brute_force_reassembly(&split.left.circuit, &split.right.circuit, 4, |_| false);
        assert_eq!(
            outcome.attempts as u128,
            placement_count(4, split.right.circuit.num_qubits())
        );
        assert!(outcome.matches.is_empty());
    }

    #[test]
    fn oracle_attack_finds_the_true_placement() {
        let c = victim();
        let obf = Obfuscator::new().with_seed(1).obfuscate(&c);
        let split = obf.split(2);

        // The attacker works in the left segment's frame (left wires
        // pinned to 0..n_left). The victim, expressed in that frame, is
        // the original circuit with wires permuted: original wires the
        // left segment touches keep their left-segment index, the rest
        // take the remaining positions.
        let n_left = split.left.circuit.num_qubits();
        let mut frame: BTreeMap<Qubit, Qubit> = split.left.wire_map.clone();
        let mut next = n_left;
        for o in 0..c.num_qubits() {
            frame.entry(Qubit::new(o)).or_insert_with(|| {
                let w = next;
                next += 1;
                Qubit::new(w)
            });
        }
        let victim_in_frame = c.remapped(c.num_qubits(), &frame).expect("total frame");

        let verifier = Verifier::new();
        let oracle = equivalence_oracle(&victim_in_frame, &verifier);
        let outcome = brute_force_reassembly(&split.left.circuit, &split.right.circuit, 4, oracle);
        // Exhaustive search with a perfect oracle must recover at least
        // one functional reassembly (the designer's own).
        assert!(
            !outcome.matches.is_empty(),
            "exhaustive attack with perfect oracle found nothing"
        );
    }

    #[test]
    fn wrong_register_size_may_hide_the_design() {
        // With an undersized register guess the true reassembly does not
        // exist; the attacker cannot even know the right size (the
        // segments' widths don't reveal it).
        let c = victim();
        let obf = Obfuscator::new().with_seed(3).obfuscate(&c);
        let split = obf.split(5);
        let small = split
            .left
            .circuit
            .num_qubits()
            .max(split.right.circuit.num_qubits());
        if small < 4 {
            let verifier = Verifier::new();
            let outcome = brute_force_reassembly(
                &split.left.circuit,
                &split.right.circuit,
                small,
                equivalence_oracle(&c, &verifier),
            );
            assert!(outcome.matches.is_empty());
        }
    }

    #[test]
    fn placement_count_values() {
        assert_eq!(placement_count(4, 0), 1);
        assert_eq!(placement_count(4, 1), 4);
        assert_eq!(placement_count(4, 4), 24);
        assert_eq!(placement_count(6, 3), 120);
    }

    #[test]
    fn reassemble_rejects_non_injective() {
        let c = victim();
        let obf = Obfuscator::new().with_seed(1).obfuscate(&c);
        let split = obf.split(2);
        let n_right = split.right.circuit.num_qubits() as usize;
        if n_right >= 2 {
            let placement = vec![0u32; n_right];
            assert!(reassemble(&split.left.circuit, &split.right.circuit, &placement, 4).is_none());
        }
    }
}
