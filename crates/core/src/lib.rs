//! # tetrislock — quantum circuit split compilation with interlocking patterns
//!
//! Rust reproduction of *TetrisLock* (Wang, John, Dong, Liu — DAC 2025):
//! IP protection for quantum circuits against untrusted compilers.
//!
//! The flow (paper Figure 2):
//!
//! 1. **Obfuscate** — [`Obfuscator`] runs Algorithm 1: a random circuit
//!    `R` *and its inverse* are placed into empty slots of the original
//!    circuit `C`, producing `R⁻¹RC` with **zero depth overhead** and the
//!    exact original function ([`insertion`]).
//! 2. **Split** — an [`interlock::InterlockPattern`] cuts the obfuscated
//!    circuit along a jagged, per-wire boundary into two segments with
//!    (generally) different qubit counts; every `R` gate is separated
//!    from its `R⁻¹` partner ([`interlock`]).
//! 3. **Compile** — each segment goes to a *different* untrusted compiler
//!    (see the `qcompile` crate); neither sees the whole design.
//! 4. **De-obfuscate** — the designer recombines the compiled segments;
//!    the `R`/`R⁻¹` halves cancel and functionality is restored exactly
//!    ([`recombine`]).
//!
//! Security analysis ([`attack`]) implements the paper's Eq. 1 collusion
//! complexity and the `kₙ·n!` baseline of prior cascading splits;
//! [`baselines`] implements those prior schemes for head-to-head
//! comparison.
//!
//! For many circuits at once, [`batch`] runs the whole pipeline as a
//! pool of crash-safe jobs: each [`job::JobState`] checkpoints to disk
//! after every stage (via `qcir::persist`), so a killed batch resumes
//! to bit-identical output. [`serve`] turns that machinery into a
//! long-running daemon: a watched intake directory, a priority queue
//! with cancellation, [`retry`]-governed backoff with a crash-loop
//! quarantine, and a graceful drain protocol.
//!
//! Equivalence claims (restoration works, wrong keys fail) are decided
//! by the tiered `qverify` engine, which scales past dense-unitary
//! extraction via a stabilizer tableau and a parallel random-stimulus
//! miter.
//!
//! # Example
//!
//! ```
//! use qcir::Circuit;
//! use qverify::Verifier;
//! use tetrislock::{Obfuscator, recombine::recombine};
//!
//! // The secret design.
//! let mut c = Circuit::new(4);
//! c.h(0).cx(0, 1).cx(1, 2).cx(0, 1);
//!
//! // Obfuscate and split with an interlocking pattern.
//! let obf = Obfuscator::new().with_seed(1).obfuscate(&c);
//! assert_eq!(obf.obfuscated().depth(), c.depth());
//! let split = obf.split(2);
//!
//! // Each segment goes to a different compiler... then recombine.
//! let restored = recombine(&split)?;
//! assert!(Verifier::new().check(&c, &restored).is_equivalent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attack;
pub mod attack_sim;
pub mod baselines;
pub mod batch;
pub mod error;
pub mod insertion;
pub mod interlock;
pub mod job;
pub mod multiway;
pub mod obfuscate;
pub mod policy;
pub mod recombine;
pub mod retry;
pub mod serve;
pub mod slots;

pub use error::LockError;
pub use insertion::InsertionConfig;
pub use interlock::{InterlockPattern, SplitPair};
pub use obfuscate::{Obfuscation, Obfuscator};
pub use policy::GatePolicy;
