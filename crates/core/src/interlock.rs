//! Interlocking split (the paper's §IV-A splitting method).
//!
//! A split is described by a *per-wire cut column* — the jagged,
//! Tetris-piece boundary of Figures 2 and 3. Gates left of the boundary
//! form segment 1 (`R⁻¹ ∪ Cl`), the rest form segment 2 (`R ∪ Cr`). The
//! two segments:
//!
//! * separate every inserted pair (`g†` left, `g` right), so neither
//!   segment is functionally the original circuit;
//! * keep only wires they actually touch, compacted and renumbered — so
//!   the segments generally have *different qubit counts*, which is the
//!   property that defeats the qubit-matching collusion attack of prior
//!   split compilation (§IV-C, Eq. 1);
//! * preserve per-wire gate order (the left set is a per-wire prefix), so
//!   concatenating left ∘ right is a valid topological reordering of the
//!   obfuscated circuit and de-obfuscation is exact.

use crate::obfuscate::Obfuscation;
use qcir::{Circuit, CircuitDag, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One compiled-independently segment of a split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Segment {
    /// The segment circuit, compacted onto its own dense wire numbering.
    pub circuit: Circuit,
    /// Map from original obfuscated-circuit wires to segment wires.
    pub wire_map: BTreeMap<Qubit, Qubit>,
}

impl Segment {
    /// Inverse wire map (segment wire → original wire).
    pub fn inverse_map(&self) -> BTreeMap<Qubit, Qubit> {
        self.wire_map.iter().map(|(&k, &v)| (v, k)).collect()
    }
}

/// A completed interlocking split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitPair {
    /// Segment 1: `R⁻¹` plus the left portion of the circuit.
    pub left: Segment,
    /// Segment 2: `R` plus the right portion.
    pub right: Segment,
    /// The pattern that produced this split.
    pub pattern: InterlockPattern,
    /// Register size of the obfuscated circuit the split came from.
    pub original_qubits: u32,
    /// Per-instruction assignment in program order: `true` means the
    /// gate went to the left segment.
    pub assignment: Vec<bool>,
}

impl SplitPair {
    /// `true` if the two segments have different qubit counts — the
    /// anti-collusion property highlighted in Figure 3.
    pub fn has_mismatched_qubits(&self) -> bool {
        self.left.circuit.num_qubits() != self.right.circuit.num_qubits()
    }
}

/// A per-wire cut: gates of wire `q` in layers `< cut[q]` belong to the
/// left segment (subject to the straddle rule — see [`InterlockPattern::split`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterlockPattern {
    cuts: Vec<usize>,
}

impl InterlockPattern {
    /// Creates a pattern from explicit per-wire cut columns.
    pub fn new(cuts: Vec<usize>) -> Self {
        InterlockPattern { cuts }
    }

    /// The cut column of each wire.
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// `true` if the boundary is jagged (not a straight vertical cut) —
    /// what makes the pattern "interlocking" rather than the cascading
    /// split of prior work.
    pub fn is_interlocking(&self) -> bool {
        self.cuts.windows(2).any(|w| w[0] != w[1])
    }

    /// Draws a random interlocking pattern for `obfuscation` that is
    /// guaranteed to separate every inserted pair: for each pair the cut
    /// on its wires falls in `(inverse_layer, forward_layer]`; unrelated
    /// wires get independent random cuts across the full depth.
    pub fn random_for(obfuscation: &Obfuscation, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = obfuscation.obfuscated();
        let depth = circuit.depth();
        let n = circuit.num_qubits() as usize;

        // Allowed cut interval per wire, initially the full range.
        let mut lo = vec![0usize; n];
        let mut hi = vec![depth; n];
        for pair in &obfuscation.insertion().pairs {
            for q in &pair.qubits {
                let i = q.index();
                lo[i] = lo[i].max(pair.inverse_layer + 1);
                hi[i] = hi[i].min(pair.forward_layer);
            }
        }
        let cuts: Vec<usize> = (0..n)
            .map(|i| {
                if lo[i] > hi[i] {
                    // Conflicting pairs on one wire cannot happen (spans
                    // are reserved), but guard anyway.
                    lo[i]
                } else {
                    // Bias unconstrained wires away from cut 0 so the left
                    // segment carries a genuine `Cl` slice of the circuit
                    // (Figure 2), not just the R⁻¹ gates.
                    let lo_i = lo[i].max(1).min(hi[i]);
                    rng.gen_range(lo_i..=hi[i])
                }
            })
            .collect();
        InterlockPattern { cuts }
    }

    /// Splits the obfuscated circuit along this pattern.
    ///
    /// Assignment rule: scan instructions in program order; a gate goes
    /// left iff none of its wires is *frozen* and its layer is below the
    /// cut of **every** operand wire. Otherwise it goes right and freezes
    /// its wires (everything later on those wires also goes right). This
    /// guarantees the left set is a per-wire prefix, making
    /// `left ∘ right` a valid reordering.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's wire count does not match the circuit.
    pub fn split(&self, obfuscation: &Obfuscation) -> SplitPair {
        let circuit = obfuscation.obfuscated();
        assert_eq!(
            self.cuts.len(),
            circuit.num_qubits() as usize,
            "pattern covers a different register"
        );
        let dag = CircuitDag::new(circuit);
        let n = circuit.num_qubits();

        let mut frozen = vec![false; n as usize];
        let mut left = Circuit::with_name(n, format!("{}_left", circuit.name()));
        let mut right = Circuit::with_name(n, format!("{}_right", circuit.name()));
        let mut assignment = Vec::with_capacity(circuit.gate_count());
        for (idx, inst) in circuit.iter().enumerate() {
            let layer = dag.layer_of(idx);
            let goes_left = inst
                .qubits()
                .iter()
                .all(|q| !frozen[q.index()] && layer < self.cuts[q.index()]);
            assignment.push(goes_left);
            if goes_left {
                left.push(inst.clone()).expect("same register");
            } else {
                for q in inst.qubits() {
                    frozen[q.index()] = true;
                }
                right.push(inst.clone()).expect("same register");
            }
        }

        let (left_circuit, left_map) = compact_or_trivial(&left);
        let (right_circuit, right_map) = compact_or_trivial(&right);
        SplitPair {
            left: Segment {
                circuit: left_circuit,
                wire_map: left_map,
            },
            right: Segment {
                circuit: right_circuit,
                wire_map: right_map,
            },
            pattern: self.clone(),
            original_qubits: n,
            assignment,
        }
    }
}

/// Compacts a circuit onto its active wires; an empty side yields a
/// 1-qubit empty circuit with an empty map.
fn compact_or_trivial(circuit: &Circuit) -> (Circuit, BTreeMap<Qubit, Qubit>) {
    match circuit.compacted() {
        Ok(pair) => pair,
        Err(_) => (Circuit::with_name(1, circuit.name()), BTreeMap::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insertion::InsertionConfig;
    use crate::obfuscate::Obfuscator;
    use qsim::unitary::equivalent_up_to_phase;

    fn sample() -> Circuit {
        // Staircase with generous leading idle windows — this shape is
        // the regression case for the planned-vs-ASAP layer bug (ASAP
        // re-layering used to pull forward halves left of the cut).
        let mut c = Circuit::with_name(6, "fig2");
        c.h(0)
            .cx(0, 1)
            .x(1)
            .cx(1, 2)
            .h(2)
            .cx(2, 3)
            .cx(3, 4)
            .x(3)
            .cx(4, 5)
            .h(5);
        c
    }

    fn obfuscate(seed: u64) -> Obfuscation {
        Obfuscator::new()
            .with_config(InsertionConfig {
                seed,
                ..Default::default()
            })
            .obfuscate(&sample())
    }

    #[test]
    fn pattern_jaggedness_detected() {
        assert!(InterlockPattern::new(vec![1, 2, 1]).is_interlocking());
        assert!(!InterlockPattern::new(vec![2, 2, 2]).is_interlocking());
    }

    #[test]
    fn split_separates_every_pair() {
        for seed in 0..10 {
            let obf = obfuscate(seed);
            let split = obf.split(seed + 100);
            for pair in &obf.insertion().pairs {
                let inv_inst = &obf.obfuscated().instructions()[pair.inverse_index];
                let fwd_inst = &obf.obfuscated().instructions()[pair.forward_index];
                // g† must appear in the left segment (mapped wires).
                let inv_mapped = inv_inst.remapped(&split.left.wire_map);
                assert!(
                    inv_mapped.is_ok()
                        && split
                            .left
                            .circuit
                            .iter()
                            .any(|i| i == &inv_mapped.clone().unwrap()),
                    "seed {seed}: inverse half missing from left segment"
                );
                let fwd_mapped = fwd_inst.remapped(&split.right.wire_map);
                assert!(
                    fwd_mapped.is_ok()
                        && split
                            .right
                            .circuit
                            .iter()
                            .any(|i| i == &fwd_mapped.clone().unwrap()),
                    "seed {seed}: forward half missing from right segment"
                );
            }
        }
    }

    #[test]
    fn assignment_field_matches_pair_separation() {
        for seed in 0..10 {
            let obf = obfuscate(seed);
            let split = obf.split(seed + 500);
            assert_eq!(split.assignment.len(), obf.obfuscated().gate_count());
            for pair in &obf.insertion().pairs {
                assert!(split.assignment[pair.inverse_index], "inverse must go left");
                assert!(
                    !split.assignment[pair.forward_index],
                    "forward must go right"
                );
            }
        }
    }

    #[test]
    fn left_is_per_wire_prefix() {
        // Recombining left ∘ right must reproduce the obfuscated function.
        for seed in 0..10 {
            let obf = obfuscate(seed);
            let split = obf.split(seed * 3 + 1);
            let rejoined = crate::recombine::recombine(&split).unwrap();
            assert!(
                equivalent_up_to_phase(obf.obfuscated(), &rejoined, 1e-9).unwrap(),
                "seed {seed}: recombination diverged"
            );
        }
    }

    #[test]
    fn segments_usually_have_mismatched_qubits() {
        let mut mismatched = 0;
        let total = 20;
        for seed in 0..total {
            let obf = obfuscate(seed);
            let split = obf.split(seed + 41);
            if split.has_mismatched_qubits() {
                mismatched += 1;
            }
        }
        // Figure 3's core property: splits need not (and mostly do not)
        // have equal register sizes.
        assert!(
            mismatched > total / 4,
            "only {mismatched}/{total} mismatched"
        );
    }

    #[test]
    fn neither_segment_contains_all_gates() {
        let obf = obfuscate(5);
        let split = obf.split(77);
        let total = obf.obfuscated().gate_count();
        assert!(split.left.circuit.gate_count() < total);
        assert!(split.right.circuit.gate_count() < total);
        assert_eq!(
            split.left.circuit.gate_count() + split.right.circuit.gate_count(),
            total
        );
    }

    #[test]
    fn random_pattern_respects_pair_windows() {
        for seed in 0..10 {
            let obf = obfuscate(seed);
            let pattern = InterlockPattern::random_for(&obf, seed + 7);
            for pair in &obf.insertion().pairs {
                for q in &pair.qubits {
                    let cut = pattern.cuts()[q.index()];
                    assert!(cut > pair.inverse_layer, "cut before inverse half");
                    assert!(cut <= pair.forward_layer, "cut after forward half");
                }
            }
        }
    }

    #[test]
    fn explicit_pattern_split() {
        let obf = obfuscate(1);
        let depth = obf.obfuscated().depth();
        // Straight cut at mid-depth still works mechanically (it's just
        // not interlocking) — if it violates a pair window the forward
        // half may land left, so only check structural invariants.
        let pattern = InterlockPattern::new(vec![depth / 2; 6]);
        let split = obf.split_with(&pattern);
        assert_eq!(
            split.left.circuit.gate_count() + split.right.circuit.gate_count(),
            obf.obfuscated().gate_count()
        );
    }

    #[test]
    #[should_panic(expected = "different register")]
    fn mismatched_pattern_panics() {
        let obf = obfuscate(1);
        let pattern = InterlockPattern::new(vec![1, 2]);
        let _ = obf.split_with(&pattern);
    }

    #[test]
    fn empty_side_handled() {
        let obf = obfuscate(2);
        // Cut at 0 everywhere: everything goes right.
        let pattern = InterlockPattern::new(vec![0; 6]);
        let split = obf.split_with(&pattern);
        assert!(split.left.circuit.is_empty());
        assert_eq!(
            split.right.circuit.gate_count(),
            obf.obfuscated().gate_count()
        );
    }
}
