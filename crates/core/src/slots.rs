//! Empty-slot analysis (Algorithm 1, step 1).
//!
//! The paper converts the circuit to a DAG, extracts layers, and records
//! the unused qubits of each layer as "empty positions". This module adds
//! the structure TetrisLock actually needs on top of that: per-wire *idle
//! windows* — maximal runs of consecutive layers in which a wire is unused.
//! A cancelling pair `g†…g` can be placed inside a window (both gates on
//! wires idle across the whole span), which is what guarantees exact
//! functional preservation with zero depth overhead.

use qcir::{Circuit, CircuitDag, Qubit};

/// A maximal run of consecutive layers during which a wire is idle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleWindow {
    /// The idle wire.
    pub qubit: Qubit,
    /// First idle layer (inclusive).
    pub start: usize,
    /// One past the last idle layer (exclusive). `end == depth` means the
    /// window extends to the end of the circuit (a trailing window).
    pub end: usize,
}

impl IdleWindow {
    /// Number of idle layers in the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the window is empty (zero layers).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// `true` if the window starts at layer 0 (a leading window — the
    /// region the paper inserts `R⁻¹R` into).
    pub fn is_leading(&self) -> bool {
        self.start == 0
    }

    /// Intersection with another window (different wire, same columns).
    pub fn overlap(&self, other: &IdleWindow) -> Option<(usize, usize)> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some((start, end))
    }
}

/// Empty-slot table for a circuit.
///
/// # Example
///
/// ```
/// use qcir::Circuit;
/// use tetrislock::slots::SlotTable;
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(0, 1); // qubit 2 idle throughout (depth 3)
/// let slots = SlotTable::new(&c);
/// let w = &slots.windows_for(2.into())[0];
/// assert_eq!((w.start, w.end), (0, 3));
/// ```
#[derive(Debug, Clone)]
pub struct SlotTable {
    num_qubits: u32,
    depth: usize,
    /// All idle windows, per wire.
    windows: Vec<Vec<IdleWindow>>,
    /// Per layer: empty qubits (Algorithm 1's `empty_positions`).
    empty_positions: Vec<Vec<Qubit>>,
}

impl SlotTable {
    /// Analyzes `circuit`.
    pub fn new(circuit: &Circuit) -> Self {
        let dag = CircuitDag::new(circuit);
        let depth = dag.num_layers();
        let n = circuit.num_qubits();
        let empty_positions = dag.empty_positions();

        let mut windows: Vec<Vec<IdleWindow>> = vec![Vec::new(); n as usize];
        for q in 0..n {
            let qubit = Qubit::new(q);
            let mut start: Option<usize> = None;
            for (layer, empties) in empty_positions.iter().enumerate() {
                let idle = empties.contains(&qubit);
                match (idle, start) {
                    (true, None) => start = Some(layer),
                    (false, Some(s)) => {
                        windows[q as usize].push(IdleWindow {
                            qubit,
                            start: s,
                            end: layer,
                        });
                        start = None;
                    }
                    _ => {}
                }
            }
            if let Some(s) = start {
                windows[q as usize].push(IdleWindow {
                    qubit,
                    start: s,
                    end: depth,
                });
            }
            // A completely idle wire in an empty circuit still offers a
            // window only if the circuit has depth; otherwise there are no
            // columns to hide in.
        }

        SlotTable {
            num_qubits: n,
            depth,
            windows,
            empty_positions,
        }
    }

    /// Circuit depth (number of layers analyzed).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of wires.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Idle windows of one wire, in layer order.
    pub fn windows_for(&self, qubit: Qubit) -> &[IdleWindow] {
        &self.windows[qubit.index()]
    }

    /// All idle windows across wires, ordered by wire then start layer.
    pub fn all_windows(&self) -> Vec<IdleWindow> {
        self.windows.iter().flatten().copied().collect()
    }

    /// Empty qubits of a layer (the paper's `empty_positions[layer]`).
    pub fn empty_at(&self, layer: usize) -> &[Qubit] {
        &self.empty_positions[layer]
    }

    /// Total number of empty slots (idle wire-layer cells) — an upper
    /// bound on how much masking material fits without depth growth.
    pub fn total_empty_slots(&self) -> usize {
        self.empty_positions.iter().map(Vec::len).sum()
    }

    /// Windows of length ≥ `min_len` on one wire.
    pub fn windows_at_least(&self, qubit: Qubit, min_len: usize) -> Vec<IdleWindow> {
        self.windows[qubit.index()]
            .iter()
            .filter(|w| w.len() >= min_len)
            .copied()
            .collect()
    }

    /// All column spans `(start, end)` of length ≥ `min_len` where *both*
    /// wires are simultaneously idle — candidate homes for a CX pair.
    pub fn pair_windows(&self, a: Qubit, b: Qubit, min_len: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for wa in &self.windows[a.index()] {
            for wb in &self.windows[b.index()] {
                if let Some((s, e)) = wa.overlap(wb) {
                    if e - s >= min_len {
                        out.push((s, e));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase() -> Circuit {
        // q0 busy from L0; q1 from L1; q2 from L2; q3 idle always.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).h(0).h(1).h(2);
        c
    }

    #[test]
    fn leading_windows_match_first_use() {
        // Layering: h0@0, cx01@1, cx12@2, h0@2, h1@3, h2@3 → depth 4.
        let c = staircase();
        let t = SlotTable::new(&c);
        assert_eq!(t.depth(), 4);
        let w1 = t.windows_for(Qubit::new(1));
        assert_eq!(
            w1,
            &[IdleWindow {
                qubit: Qubit::new(1),
                start: 0,
                end: 1
            }]
        );
        let w2 = t.windows_for(Qubit::new(2));
        assert_eq!((w2[0].start, w2[0].end), (0, 2));
        assert!(w2[0].is_leading());
    }

    #[test]
    fn fully_idle_wire_has_full_window() {
        let c = staircase();
        let t = SlotTable::new(&c);
        let w3 = t.windows_for(Qubit::new(3));
        assert_eq!(w3.len(), 1);
        assert_eq!((w3[0].start, w3[0].end), (0, 4));
        assert_eq!(w3[0].len(), 4);
    }

    #[test]
    fn trailing_window_detected() {
        let c = staircase();
        let t = SlotTable::new(&c);
        // q0 is used at layers 0, 1, 2 and idle in the final layer.
        let w0 = t.windows_for(Qubit::new(0));
        assert_eq!(w0.len(), 1);
        assert_eq!((w0[0].start, w0[0].end), (3, 4));
        assert!(!w0[0].is_leading());
    }

    #[test]
    fn pair_windows_require_mutual_idleness() {
        let c = staircase();
        let t = SlotTable::new(&c);
        // q2 idle [0,2), q3 idle [0,4): overlap [0,2).
        let pw = t.pair_windows(Qubit::new(2), Qubit::new(3), 2);
        assert_eq!(pw, vec![(0, 2)]);
        // min_len 3 excludes it.
        assert!(t.pair_windows(Qubit::new(2), Qubit::new(3), 3).is_empty());
    }

    #[test]
    fn empty_positions_agree_with_windows() {
        let c = staircase();
        let t = SlotTable::new(&c);
        let empties: usize = (0..t.depth()).map(|l| t.empty_at(l).len()).sum();
        let window_cells: usize = t.all_windows().iter().map(IdleWindow::len).sum();
        assert_eq!(empties, window_cells);
        assert_eq!(t.total_empty_slots(), empties);
    }

    #[test]
    fn dense_circuit_has_no_windows() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let t = SlotTable::new(&c);
        assert!(t.all_windows().is_empty());
        assert_eq!(t.total_empty_slots(), 0);
    }

    #[test]
    fn empty_circuit_has_no_depth_or_windows() {
        let c = Circuit::new(3);
        let t = SlotTable::new(&c);
        assert_eq!(t.depth(), 0);
        assert!(t.all_windows().is_empty());
    }

    #[test]
    fn window_helpers() {
        let w = IdleWindow {
            qubit: Qubit::new(0),
            start: 2,
            end: 5,
        };
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        assert!(!w.is_leading());
        let v = IdleWindow {
            qubit: Qubit::new(1),
            start: 4,
            end: 8,
        };
        assert_eq!(w.overlap(&v), Some((4, 5)));
        let far = IdleWindow {
            qubit: Qubit::new(1),
            start: 6,
            end: 8,
        };
        assert_eq!(w.overlap(&far), None);
    }
}
