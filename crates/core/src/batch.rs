//! The batch protection service: N-worker execution of many
//! checkpointed jobs.
//!
//! [`run_batch`] drives a set of [`JobState`] pipelines (one per input
//! circuit) over a fixed-size worker pool. Each job checkpoints after
//! every stage transition through [`crate::job::save_checkpoint`], so a
//! crash — including the deliberate aborts injected via
//! [`crate::job::KILL_AFTER_CHECKPOINTS_ENV`] — loses at most one
//! stage of one job per worker. Re-running with `resume: true` picks
//! every job up from its last good checkpoint (or its `.prev`
//! fallback) and finishes it.
//!
//! **Determinism contract**: per-job outputs and the manifest are
//! byte-identical regardless of worker count, scheduling order, or how
//! many kill/resume cycles interrupted the run. Jobs never exchange
//! data; all randomness is seeded from the per-job config; results are
//! sorted by job id before the manifest is written.

use crate::job::{
    checkpoint_path, load_checkpoint, save_checkpoint, JobConfig, JobError, JobStage, JobState,
    JobVerdict,
};
use qcir::{persist, Circuit};
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static JOBS_COMPLETED: qobs::Counter = qobs::Counter::new("batch.jobs_completed");
static JOBS_FAILED: qobs::Counter = qobs::Counter::new("batch.jobs_failed");
static JOBS_PANICKED: qobs::Counter = qobs::Counter::new("batch.jobs_panicked");
static JOBS_SKIPPED: qobs::Counter = qobs::Counter::new("batch.jobs_skipped");
static TMPS_SWEPT: qobs::Counter = qobs::Counter::new("batch.tmps_swept");

/// Name of the manifest file written into the output directory.
pub const MANIFEST_FILE: &str = "manifest.txt";

/// Fixed first lines of every manifest.
pub(crate) const MANIFEST_HEADER: &str =
    "# tetrislock batch manifest\n# id\tstatus\ttier\toutput\n";

/// Minimum age (against mtime) before the startup sweep deletes an
/// orphan `.tmp` staging file. Young tmps may belong to a concurrent
/// writer racing us in the same directory; anything older is debris
/// from a crashed run.
pub const TMP_SWEEP_MIN_AGE_SECS: u64 = 60;

/// Batch-level configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Directory for checkpoint files (created if missing).
    pub jobs_dir: PathBuf,
    /// Directory for restored-circuit outputs and the manifest.
    pub out_dir: PathBuf,
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Resume jobs from existing checkpoints instead of starting fresh.
    pub resume: bool,
    /// Pipeline parameters shared by every job in the batch.
    pub job: JobConfig,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            jobs_dir: PathBuf::from("tlk-jobs"),
            out_dir: PathBuf::from("tlk-out"),
            workers: 1,
            resume: false,
            job: JobConfig::default(),
        }
    }
}

/// Terminal failure of one job, as recorded in outcomes and the
/// manifest. `Panicked` is distinct from `Error` so resume semantics
/// stay total: a worker that blew up mid-stage still leaves a typed
/// terminal state behind instead of a missing manifest row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// A stage, checkpoint, or configuration error, rendered to text.
    Error(String),
    /// The worker thread panicked while driving the job; the payload is
    /// the panic message.
    Panicked(String),
}

impl JobFailure {
    /// The underlying failure message.
    pub fn message(&self) -> &str {
        match self {
            JobFailure::Error(m) | JobFailure::Panicked(m) => m,
        }
    }
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFailure::Error(m) => f.write_str(m),
            JobFailure::Panicked(m) => write!(f, "worker panicked: {m}"),
        }
    }
}

/// Terminal status of one job in a batch run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's id.
    pub id: String,
    /// Stage transitions performed over the job's whole lifetime
    /// (across resumes).
    pub steps_done: u64,
    /// `true` if the job was restored from a checkpoint this run.
    pub resumed: bool,
    /// The verification verdict, or the typed failure.
    pub result: Result<JobVerdict, JobFailure>,
}

/// What a finished (or failed) batch run produced.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job outcomes, sorted by id.
    pub outcomes: Vec<JobOutcome>,
    /// Path of the manifest written into the output directory.
    pub manifest_path: PathBuf,
}

impl BatchReport {
    /// `true` iff every job completed and verified equivalent.
    pub fn all_equivalent(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(&o.result, Ok(v) if v.equivalent))
    }

    /// Number of jobs that failed (stage error or unusable checkpoint).
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_err()).count()
    }
}

/// Runs the batch: one checkpointed pipeline per input circuit, spread
/// over `config.workers` threads.
///
/// `inputs` pairs each job id with its original circuit. Ids must be
/// unique — they name checkpoint and output files.
///
/// # Errors
///
/// [`JobError`] only for batch-level failures (directories cannot be
/// created, duplicate ids, manifest unwritable). Per-job failures are
/// *reported*, not raised: they land in the returned
/// [`BatchReport::outcomes`] so one bad job cannot sink the batch.
pub fn run_batch(
    inputs: Vec<(String, Circuit)>,
    config: &BatchConfig,
) -> Result<BatchReport, JobError> {
    let batch_err = |message: String| JobError::Stage {
        id: "<batch>".to_string(),
        stage: JobStage::Obfuscate,
        message,
    };
    for dir in [&config.jobs_dir, &config.out_dir] {
        std::fs::create_dir_all(dir)
            .map_err(|e| batch_err(format!("cannot create {}: {e}", dir.display())))?;
    }
    sweep_tmp_debris(&[&config.jobs_dir, &config.out_dir]);
    {
        let mut ids: Vec<&str> = inputs.iter().map(|(id, _)| id.as_str()).collect();
        ids.sort_unstable();
        if let Some(dup) = ids.windows(2).find(|w| w[0] == w[1]) {
            return Err(batch_err(format!("duplicate job id `{}`", dup[0])));
        }
    }

    let workers = config.workers.max(1).min(inputs.len().max(1));
    let span = qobs::span("batch.run")
        .attr("jobs", inputs.len())
        .attr("workers", workers)
        .attr("resume", if config.resume { 1u64 } else { 0u64 });

    let queue: Mutex<VecDeque<(String, Circuit)>> = Mutex::new(inputs.into_iter().collect());
    let outcomes: Mutex<Vec<JobOutcome>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").pop_front();
                let Some((id, circuit)) = next else { break };
                // A panicking stage must not take the manifest row with
                // it: catch the unwind and record a typed terminal
                // state so resume semantics stay total.
                let outcome = catch_unwind(AssertUnwindSafe(|| run_job(&id, circuit, config)))
                    .unwrap_or_else(|payload| JobOutcome {
                        id: id.clone(),
                        steps_done: 0,
                        resumed: false,
                        result: Err(JobFailure::Panicked(panic_message(payload.as_ref()))),
                    });
                outcomes.lock().expect("outcomes poisoned").push(outcome);
            });
        }
    });

    let mut outcomes = outcomes.into_inner().expect("outcomes poisoned");
    outcomes.sort_by(|a, b| a.id.cmp(&b.id));
    for o in &outcomes {
        match &o.result {
            Ok(_) => JOBS_COMPLETED.incr(),
            Err(JobFailure::Panicked(_)) => {
                JOBS_FAILED.incr();
                JOBS_PANICKED.incr();
            }
            Err(JobFailure::Error(_)) => JOBS_FAILED.incr(),
        }
    }
    let _span = span.attr(
        "failed",
        outcomes.iter().filter(|o| o.result.is_err()).count(),
    );

    let manifest_path = config.out_dir.join(MANIFEST_FILE);
    write_manifest(&manifest_path, &outcomes)
        .map_err(|e| batch_err(format!("cannot write manifest: {e}")))?;
    Ok(BatchReport {
        outcomes,
        manifest_path,
    })
}

/// Runs one job to completion (or failure), checkpointing after every
/// stage.
fn run_job(id: &str, circuit: Circuit, config: &BatchConfig) -> JobOutcome {
    let _span = qobs::span("batch.job").attr("job", String::from(id));
    let (mut state, resumed) = match acquire_state(id, circuit, config) {
        Ok(pair) => pair,
        Err(err) => {
            return JobOutcome {
                id: id.to_string(),
                steps_done: 0,
                resumed: false,
                result: Err(JobFailure::Error(err.to_string())),
            }
        }
    };
    if resumed {
        // A Done checkpoint whose output vanished must re-emit; with the
        // output present there is nothing left to do.
        if state.is_done() && !state.output_path(&config.out_dir).exists() {
            state.stage = JobStage::Emit;
        }
        if state.is_done() {
            JOBS_SKIPPED.incr();
            return JobOutcome {
                id: id.to_string(),
                steps_done: state.steps_done,
                resumed,
                result: state
                    .verdict
                    .clone()
                    .ok_or_else(|| JobFailure::Error("done without verdict".to_string())),
            };
        }
    }
    loop {
        if let Err(err) = state.advance(&config.out_dir) {
            return JobOutcome {
                id: id.to_string(),
                steps_done: state.steps_done,
                resumed,
                result: Err(JobFailure::Error(err.to_string())),
            };
        }
        if let Err(err) = save_checkpoint(&config.jobs_dir, &state) {
            return JobOutcome {
                id: id.to_string(),
                steps_done: state.steps_done,
                resumed,
                result: Err(JobFailure::Error(err.to_string())),
            };
        }
        if state.is_done() {
            return JobOutcome {
                id: id.to_string(),
                steps_done: state.steps_done,
                resumed,
                result: state
                    .verdict
                    .clone()
                    .ok_or_else(|| JobFailure::Error("done without verdict".to_string())),
            };
        }
    }
}

/// Renders a panic payload (normally a `&str` or `String`) to text.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Removes aged orphan `.tmp` staging files (debris from crashed runs)
/// from the given directories, logging each removal through qobs.
pub(crate) fn sweep_tmp_debris(dirs: &[&Path]) {
    let min_age = std::time::Duration::from_secs(TMP_SWEEP_MIN_AGE_SECS);
    for dir in dirs {
        let Ok(removed) = persist::sweep_orphan_tmps(dir, min_age) else {
            continue;
        };
        for path in removed {
            TMPS_SWEPT.incr();
            qobs::event(
                "batch.tmp_swept",
                &[("path", qobs::AttrValue::from(path.display().to_string()))],
            );
        }
    }
}

/// Loads or creates the job's state. On `resume`, a loadable checkpoint
/// (current or `.prev`) wins; otherwise the job starts fresh. Without
/// `resume`, any stale checkpoint is ignored and will be rotated away
/// by the first save.
fn acquire_state(
    id: &str,
    circuit: Circuit,
    config: &BatchConfig,
) -> Result<(JobState, bool), JobError> {
    if config.resume {
        if let Some(state) = load_checkpoint(&config.jobs_dir, id)? {
            if state.config != config.job {
                return Err(JobError::Stage {
                    id: id.to_string(),
                    stage: state.stage,
                    message: format!(
                        "checkpoint {} was written with a different job configuration; \
                         re-run without --resume to start over",
                        checkpoint_path(&config.jobs_dir, id).display()
                    ),
                });
            }
            return Ok((state, true));
        }
    }
    let state = JobState::new(id, circuit, config.job.clone());
    // Checkpoint the fresh state immediately: the fault-injection suite
    // can then kill the process during the very first stage and still
    // find a checkpoint to resume from.
    save_checkpoint(&config.jobs_dir, &state)?;
    Ok((state, false))
}

/// The manifest columns (status, tier, output) for one outcome. Shared
/// with the serve daemon so both writers produce byte-identical rows.
pub(crate) fn manifest_row(o: &JobOutcome) -> (String, String, String) {
    let (status, tier) = match &o.result {
        Ok(v) if v.equivalent => ("equivalent", v.tier.as_str()),
        Ok(v) => ("NOT-EQUIVALENT", v.tier.as_str()),
        Err(JobFailure::Panicked(_)) => ("PANICKED", "-"),
        Err(JobFailure::Error(_)) => ("FAILED", "-"),
    };
    let output = match &o.result {
        Ok(_) => format!("{}.restored.qasm", o.id),
        Err(failure) => failure.message().replace(['\t', '\n'], " "),
    };
    (status.to_string(), tier.to_string(), output)
}

/// Renders header + rows (already sorted by id) as manifest text.
pub(crate) fn render_manifest<'a>(
    rows: impl Iterator<Item = (&'a str, &'a str, &'a str, &'a str)>,
) -> String {
    let mut text = String::from(MANIFEST_HEADER);
    for (id, status, tier, output) in rows {
        text.push_str(&format!("{id}\t{status}\t{tier}\t{output}\n"));
    }
    text
}

/// Atomically (tmp + rename) replaces the manifest file with `text`.
pub(crate) fn write_manifest_text(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = persist::tmp_path(path);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Writes the deterministic batch manifest: one tab-separated line per
/// job, sorted by id, plus a fixed header. Atomic (tmp + rename).
fn write_manifest(path: &Path, outcomes: &[JobOutcome]) -> std::io::Result<()> {
    let rows: Vec<(&str, (String, String, String))> = outcomes
        .iter()
        .map(|o| (o.id.as_str(), manifest_row(o)))
        .collect();
    let text = render_manifest(
        rows.iter()
            .map(|(id, (s, t, o))| (*id, s.as_str(), t.as_str(), o.as_str())),
    );
    write_manifest_text(path, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> Vec<(String, Circuit)> {
        let mut a = Circuit::with_name(4, "alpha");
        a.h(0).cx(0, 1).cx(1, 2).cx(0, 1).x(3).cx(3, 2);
        let mut b = Circuit::with_name(5, "beta");
        b.h(0).cx(0, 1).ccx(0, 1, 2).cx(2, 3).h(4).cx(3, 4);
        let mut c = Circuit::with_name(3, "gamma");
        c.x(0).cx(0, 1).ccx(0, 1, 2);
        vec![
            ("alpha".to_string(), a),
            ("beta".to_string(), b),
            ("gamma".to_string(), c),
        ]
    }

    fn config(tag: &str, workers: usize) -> BatchConfig {
        let base = std::env::temp_dir().join(format!("tlk_batch_{tag}_{}", std::process::id()));
        BatchConfig {
            jobs_dir: base.join("jobs"),
            out_dir: base.join("out"),
            workers,
            resume: false,
            job: JobConfig::default(),
        }
    }

    #[test]
    fn batch_completes_and_verifies() {
        let report = run_batch(inputs(), &config("basic", 2)).unwrap();
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.all_equivalent(), "{:?}", report.outcomes);
        assert!(report.manifest_path.exists());
    }

    #[test]
    fn outputs_identical_across_worker_counts() {
        let cfg1 = config("w1", 1);
        let cfg4 = config("w4", 4);
        run_batch(inputs(), &cfg1).unwrap();
        run_batch(inputs(), &cfg4).unwrap();
        for (id, _) in inputs() {
            let a = std::fs::read(cfg1.out_dir.join(format!("{id}.restored.qasm"))).unwrap();
            let b = std::fs::read(cfg4.out_dir.join(format!("{id}.restored.qasm"))).unwrap();
            assert_eq!(a, b, "job {id} diverged across worker counts");
        }
        let m1 = std::fs::read(cfg1.out_dir.join(MANIFEST_FILE)).unwrap();
        let m4 = std::fs::read(cfg4.out_dir.join(MANIFEST_FILE)).unwrap();
        assert_eq!(m1, m4, "manifest diverged across worker counts");
    }

    #[test]
    fn resume_skips_completed_jobs() {
        let mut cfg = config("skip", 2);
        let first = run_batch(inputs(), &cfg).unwrap();
        assert!(first.all_equivalent());
        cfg.resume = true;
        let second = run_batch(inputs(), &cfg).unwrap();
        assert!(second.all_equivalent());
        for o in &second.outcomes {
            assert!(o.resumed, "job {} should have resumed", o.id);
        }
    }

    #[test]
    fn resume_refuses_mismatched_config() {
        let mut cfg = config("mismatch", 1);
        run_batch(inputs(), &cfg).unwrap();
        cfg.resume = true;
        cfg.job.seed = 999;
        let report = run_batch(inputs(), &cfg).unwrap();
        assert_eq!(report.failed(), 3);
        for o in &report.outcomes {
            let failure = o.result.as_ref().unwrap_err();
            assert!(
                failure.message().contains("different job configuration"),
                "{failure}"
            );
        }
    }

    #[test]
    fn panicking_job_records_panicked_manifest_state() {
        // The hook matches by exact id, so a unique id keeps this safe
        // alongside the other (parallel) tests in this binary.
        std::env::set_var(crate::job::PANIC_JOB_ENV, "panicky_zeta");
        let mut c = Circuit::with_name(3, "panicky");
        c.x(0).cx(0, 1);
        let report = run_batch(vec![("panicky_zeta".to_string(), c)], &config("panic", 1)).unwrap();
        std::env::remove_var(crate::job::PANIC_JOB_ENV);
        assert_eq!(report.failed(), 1);
        assert!(
            matches!(report.outcomes[0].result, Err(JobFailure::Panicked(_))),
            "{:?}",
            report.outcomes[0].result
        );
        let manifest = std::fs::read_to_string(&report.manifest_path).unwrap();
        assert!(
            manifest.contains("panicky_zeta\tPANICKED\t-\t"),
            "{manifest}"
        );
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut dup = inputs();
        let clone = dup[0].clone();
        dup.push(clone);
        assert!(run_batch(dup, &config("dup", 1)).is_err());
    }
}
