//! Prints the collusion-attack complexity of recombining split segments
//! (paper §IV-C, Eq. 1) for a concrete scenario: the RevLib benchmarks
//! split by TetrisLock, attacked by compilers that also see `k`
//! unrelated jobs of every size.
//!
//! ```text
//! cargo run -p examples --bin attack_complexity_table
//! ```

use tetrislock::attack::{saki_complexity_log10, tetrislock_complexity_log10, SegmentCensus};
use tetrislock::Obfuscator;

fn main() {
    let k = 4u64;
    println!("collusion complexity per benchmark (k = {k} candidate jobs per size)\n");
    println!(
        "{:<12} {:>7} {:>9} {:>15} {:>17}",
        "Circuit", "qubits", "split L/R", "log10 Saki[20]", "log10 TetrisLock"
    );
    println!("{}", "-".repeat(64));
    for bench in revlib::table1_benchmarks() {
        let c = bench.circuit();
        let obf = Obfuscator::new().with_seed(3).obfuscate(c);
        let split = obf.split(13);
        let n_left = split.left.circuit.num_qubits();
        let n_right = split.right.circuit.num_qubits();
        // The attacker holds the left segment and scans for the right.
        let census = SegmentCensus::uniform(c.num_qubits() + 4, k);
        println!(
            "{:<12} {:>7} {:>6}/{:<3} {:>15.2} {:>17.2}",
            bench.name(),
            c.num_qubits(),
            n_left,
            n_right,
            saki_complexity_log10(c.num_qubits(), k),
            tetrislock_complexity_log10(n_left, &census),
        );
    }
    println!("\nSaki's cascading split lets the attacker filter candidates to the");
    println!("exact register width; Eq. 1 shows TetrisLock forces enumeration over");
    println!("every candidate size, every wire subset and every mapping.");
}
