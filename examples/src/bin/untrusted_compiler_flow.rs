//! The full threat-model flow of the paper's Figure 2:
//!
//! 1. obfuscate the secret circuit (random masking, zero depth overhead);
//! 2. split it with an interlocking pattern;
//! 3. hand each segment to a *different untrusted compiler* (two
//!    independently configured transpilers targeting the FakeValencia
//!    device);
//! 4. recombine the compiled segments and run on the noisy device;
//! 5. compare accuracy against the original circuit.
//!
//! ```text
//! cargo run -p examples --bin untrusted_compiler_flow --release
//! ```

use qcir::{Circuit, Qubit};
use qcompile::{OptimizationLevel, Transpiler};
use qmetrics::accuracy;
use qsim::{Device, Sampler};
use std::collections::BTreeMap;
use tetrislock::recombine::recombine_compiled;
use tetrislock::Obfuscator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = revlib::mini_alu();
    let circuit = bench.circuit();
    let expected = bench.expected_output();
    let device = Device::fake_valencia();
    println!(
        "secret circuit: {} ({} qubits, {} gates, depth {})",
        bench.name(),
        circuit.num_qubits(),
        circuit.gate_count(),
        circuit.depth()
    );

    // Designer side: obfuscate + split.
    let obf = Obfuscator::new().with_seed(11).obfuscate(circuit);
    let split = obf.split(23);
    println!(
        "split into {}-qubit and {}-qubit segments (inserted {} masking gates)",
        split.left.circuit.num_qubits(),
        split.right.circuit.num_qubits(),
        obf.insertion().gate_overhead(),
    );

    // Untrusted compiler A: aggressive optimizer. Note: its inverse-pair
    // cancellation pass CANNOT strip the masking gates, because each
    // segment holds only one half of every R/R⁻¹ pair.
    let compiler_a = Transpiler::new(device.clone()).with_optimization(OptimizationLevel::Full);
    // Untrusted compiler B: a different vendor — light optimization,
    // trivial layout.
    let compiler_b = Transpiler::new(device.clone())
        .with_optimization(OptimizationLevel::Light)
        .with_trivial_layout();

    let compiled_left = compiler_a.transpile(&split.left.circuit)?;
    let compiled_right = compiler_b.transpile(&split.right.circuit)?;
    println!(
        "compiler A output: {} native gates ({} swaps) — sees {} of {} original gates",
        compiled_left.circuit.gate_count(),
        compiled_left.swaps_inserted,
        split.left.circuit.gate_count(),
        obf.obfuscated().gate_count(),
    );
    println!(
        "compiler B output: {} native gates ({} swaps)",
        compiled_right.circuit.gate_count(),
        compiled_right.swaps_inserted,
    );

    // Designer side: de-obfuscation. Convert each compiled segment back
    // to its logical wires, then map segment wires to the original
    // register (extra routing wires become fresh ancillas).
    let left_logical = compiled_left.into_logical_circuit();
    let right_logical = compiled_right.into_logical_circuit();

    let n_orig = circuit.num_qubits();
    let (left_map, next) = segment_to_original(&split.left.wire_map, &left_logical, n_orig, n_orig);
    let (right_map, total) =
        segment_to_original(&split.right.wire_map, &right_logical, n_orig, next);

    let recombined =
        recombine_compiled(total, &left_logical, &left_map, &right_logical, &right_map)?;
    println!(
        "recombined executable circuit: {} gates over {} wires",
        recombined.gate_count(),
        recombined.num_qubits()
    );

    // Baseline: the original circuit compiled in one piece (what the
    // designer would run if they trusted a single compiler). Both sides
    // of the comparison are compiled circuits, as in the paper's §V-D2.
    let baseline = compiler_a.transpile(circuit)?.into_logical_circuit();

    let shots = 1000;
    let original_counts = Sampler::new(shots)
        .with_seed(1)
        .run_noisy(&baseline, device.noise())?;
    let baseline_marginal = original_counts.marginal(&(0..n_orig).collect::<Vec<_>>());
    let recombined_counts = Sampler::new(shots)
        .with_seed(2)
        .run_noisy(&recombined, device.noise())?;
    // Outcomes of the recombined circuit live on the original wires 0..n.
    let marginal = recombined_counts.marginal(&(0..n_orig).collect::<Vec<_>>());

    let acc_orig = accuracy(&baseline_marginal, expected);
    let acc_rest = accuracy(&marginal, expected);
    println!("\naccuracy (original, compiled whole):  {acc_orig:.3}");
    println!("accuracy (split-compiled, restored):  {acc_rest:.3}");
    println!(
        "accuracy change: {:.2}% (paper: ~1% or less)",
        ((acc_orig - acc_rest) / acc_orig * 100.0).abs()
    );
    Ok(())
}

/// Extends a segment→original wire map to cover a compiled segment's
/// extra (routing) wires with fresh indices starting at `next_free`.
fn segment_to_original(
    split_map: &BTreeMap<Qubit, Qubit>,
    logical_circuit: &Circuit,
    _n_orig: u32,
    mut next_free: u32,
) -> (BTreeMap<Qubit, Qubit>, u32) {
    // split_map: original wire -> segment wire. Invert it.
    let mut map: BTreeMap<Qubit, Qubit> = split_map.iter().map(|(&o, &s)| (s, o)).collect();
    for w in 0..logical_circuit.num_qubits() {
        map.entry(Qubit::new(w)).or_insert_with(|| {
            let fresh = next_free;
            next_free += 1;
            Qubit::new(fresh)
        });
    }
    (map, next_free)
}
