//! Reproduces the *look* of the paper's Figures 2 and 3: the same
//! obfuscated 6-qubit circuit split two different ways, showing the
//! jagged (Tetris-like) boundary and the mismatched qubit counts of the
//! resulting segments.
//!
//! ```text
//! cargo run -p examples --bin interlocking_patterns
//! ```

use qcir::{display, Circuit};
use tetrislock::{InterlockPattern, Obfuscator};

fn main() {
    // A 6-qubit staircase circuit in the spirit of Figure 2's example:
    // wires come alive one layer at a time, leaving the leading idle
    // region the random circuit R and its inverse are hidden in.
    let mut c = Circuit::with_name(6, "fig2_demo");
    c.h(0)
        .cx(0, 1)
        .x(1)
        .cx(1, 2)
        .h(2)
        .cx(2, 3)
        .cx(3, 4)
        .x(3)
        .cx(4, 5)
        .h(5);

    let obf = Obfuscator::new().with_seed(2024).obfuscate(&c);
    println!(
        "obfuscated circuit ({} qubits, {} gates, depth {} — unchanged):\n",
        obf.obfuscated().num_qubits(),
        obf.obfuscated().gate_count(),
        obf.obfuscated().depth()
    );
    print!("{}", display::render(obf.obfuscated()));

    for (figure, seed) in [("Figure 2", 1u64), ("Figure 3", 99u64)] {
        let pattern = InterlockPattern::random_for(&obf, seed);
        let split = obf.split_with(&pattern);
        println!(
            "\n==== {figure}-style split (pattern cuts: {:?}) ====",
            pattern.cuts()
        );
        let cut_markers: Vec<(u32, usize)> = pattern
            .cuts()
            .iter()
            .enumerate()
            .map(|(q, &c)| (q as u32, c))
            .collect();
        print!(
            "{}",
            display::render_with_cuts(obf.obfuscated(), &cut_markers)
        );
        println!(
            "split 1: {} qubits, {} gates    split 2: {} qubits, {} gates    mismatched: {}",
            split.left.circuit.num_qubits(),
            split.left.circuit.gate_count(),
            split.right.circuit.num_qubits(),
            split.right.circuit.gate_count(),
            split.has_mismatched_qubits(),
        );
        println!("\nsplit 1 as its own circuit (compiler A's view):");
        print!("{}", display::render(&split.left.circuit));
        println!("split 2 as its own circuit (compiler B's view):");
        print!("{}", display::render(&split.right.circuit));
    }
    println!("\nas in Figure 3: the two splits have different numbers of qubits and");
    println!("not every original qubit needs to be split at the same column.");
}
