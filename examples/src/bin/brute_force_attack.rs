//! Plays the §IV-C colluding attacker against a TetrisLock split: given
//! both segments (but no wire maps), brute-force every injective wire
//! placement and test each reassembly against a behavioural oracle.
//!
//! The run shows (a) the attempt count growing as the Eq. 1 enumeration
//! predicts, and (b) residual ambiguity — even the exhaustive attacker
//! with a perfect oracle cannot distinguish several candidate designs.
//!
//! ```text
//! cargo run -p examples --bin brute_force_attack --release
//! ```

use qcir::{Circuit, Qubit};
use qsim::unitary::equivalent_up_to_phase;
use std::collections::BTreeMap;
use tetrislock::attack_sim::{brute_force_reassembly, placement_count};
use tetrislock::Obfuscator;

fn main() {
    let bench = revlib::adder_1bit();
    let victim = bench.circuit();
    println!(
        "victim: {} ({} qubits, {} gates)\n",
        bench.name(),
        victim.num_qubits(),
        victim.gate_count()
    );

    println!(
        "{:<6} {:>8} {:>8} {:>12} {:>9} {:>10}",
        "seed", "left q", "right q", "placements", "matches", "ambiguous"
    );
    for seed in 0..6u64 {
        let obf = Obfuscator::new().with_seed(seed).obfuscate(victim);
        let split = obf.split(seed + 40);
        let n = victim.num_qubits();

        // Express the victim in the attacker's frame (left wires pinned).
        let mut frame: BTreeMap<Qubit, Qubit> = split.left.wire_map.clone();
        let mut next = split.left.circuit.num_qubits();
        for o in 0..n {
            frame.entry(Qubit::new(o)).or_insert_with(|| {
                let w = next;
                next += 1;
                Qubit::new(w)
            });
        }
        let victim_in_frame: Circuit = victim.remapped(n, &frame).expect("total frame");

        let outcome =
            brute_force_reassembly(&split.left.circuit, &split.right.circuit, n, |candidate| {
                equivalent_up_to_phase(candidate, &victim_in_frame, 1e-9).unwrap_or(false)
            });
        println!(
            "{:<6} {:>8} {:>8} {:>12} {:>9} {:>10}",
            seed,
            split.left.circuit.num_qubits(),
            split.right.circuit.num_qubits(),
            outcome.attempts,
            outcome.matches.len(),
            outcome.is_ambiguous(),
        );
        assert_eq!(
            outcome.attempts as u128,
            placement_count(n, split.right.circuit.num_qubits())
        );
    }

    println!("\nnote: this attacker was *given* the true register size and a perfect");
    println!("behavioural oracle. The Eq. 1 model additionally charges for unknown");
    println!("register size (Σ over candidate sizes i) and candidate multiplicity kᵢ;");
    println!("see `cargo run -p bench --bin attack_complexity` for those curves.");
}
