//! The Hadamard insertion policy (§V-A): for non-arithmetic circuits
//! such as Grover's algorithm the X/CX pool would leak structure, so
//! TetrisLock inserts H gates instead. This example obfuscates a Grover
//! search, checks the masked circuit scrambles the amplified state, and
//! verifies restoration.
//!
//! ```text
//! cargo run -p examples --bin grover_policy --release
//! ```

use qcir::Circuit;
use qmetrics::tvd_vs_ideal;
use qsim::{Sampler, Statevector};
use revlib::grover::{grover, optimal_iterations};
use tetrislock::recombine::recombine;
use tetrislock::{GatePolicy, InsertionConfig, Obfuscator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let marked = 0b101usize;
    // The search runs on qubits 0..2 of a 5-qubit register — the typical
    // situation when an algorithm is smaller than the target machine.
    // The spare wires provide the idle region the H masking hides in.
    let search = grover(3, marked, optimal_iterations(3));
    let mut circuit = Circuit::with_name(5, "grover3_on_5q");
    circuit.compose(&search)?;
    println!(
        "grover search over 3 of 5 qubits, marked |{marked:03b}⟩ ({} gates, depth {})",
        circuit.gate_count(),
        circuit.depth()
    );
    let ideal = Statevector::from_circuit(&circuit)?;
    println!(
        "P(marked) in the clean circuit: {:.3}\n",
        ideal.probability(marked)
    );

    let obfuscator = Obfuscator::new().with_config(InsertionConfig {
        policy: GatePolicy::Hadamard,
        gate_limit: 4,
        seed: 5,
        ..Default::default()
    });
    let obf = obfuscator.obfuscate(&circuit);
    println!(
        "inserted {} Hadamard gates (H policy), depth change {}",
        obf.insertion().gate_overhead(),
        obf.depth_increase()
    );

    // The masked view (R⁻¹ withheld): the stray Hadamards put the spare
    // wires in superposition, scrambling the full-register signature the
    // attacker would counterfeit.
    let masked = obf.masked_circuit();
    let sampler = Sampler::new(1000).with_seed(3);
    let masked_counts = sampler.run_ideal(&masked)?;
    println!(
        "masked circuit: P(full outcome) = {:.3}, TVD vs ideal = {:.3}",
        masked_counts.probability(marked),
        tvd_vs_ideal(&masked_counts, marked)
    );

    // Restoration brings the clean signature back.
    let split = obf.split(8);
    let restored = recombine(&split)?;
    let restored_counts = sampler.run_ideal(&restored)?;
    println!(
        "restored circuit: P(full outcome) = {:.3}, TVD vs ideal = {:.3}",
        restored_counts.probability(marked),
        tvd_vs_ideal(&restored_counts, marked)
    );
    assert!(restored_counts.probability(marked) > 0.9);
    assert!(
        masked_counts.probability(marked) < restored_counts.probability(marked),
        "masking must degrade the clean signature"
    );
    println!("\nthe H policy hides superposition-style masking inside circuits that");
    println!("are themselves superposition-heavy (§V-A); the X/CX pool would stand");
    println!("out structurally in a Grover program.");
    Ok(())
}
