//! Splitting across *more than two* untrusted compilers (§IV: "divided
//! into two or more sub-circuits"). Each of the k segments goes to a
//! different compiler; every `R`/`R⁻¹` pair straddles a segment boundary,
//! and the width census the colluding attacker faces diversifies with k.
//!
//! ```text
//! cargo run -p examples --bin multiway_protect
//! ```

use revlib::spec::classical_eval;
use tetrislock::multiway::MultiwayPattern;
use tetrislock::Obfuscator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = revlib::rd53();
    let circuit = bench.circuit();
    println!(
        "protecting {} ({} qubits, {} gates, depth {})\n",
        bench.name(),
        circuit.num_qubits(),
        circuit.gate_count(),
        circuit.depth()
    );

    let obf = Obfuscator::new().with_seed(6).obfuscate(circuit);
    println!(
        "masking: {} gates inserted, depth change {}",
        obf.insertion().gate_overhead(),
        obf.depth_increase()
    );

    for k in [2usize, 3, 4] {
        let pattern = MultiwayPattern::random_for(&obf, k, 77);
        let split = pattern.split(&obf);
        let widths: Vec<String> = split
            .segments
            .iter()
            .map(|s| {
                if s.circuit.is_empty() {
                    "∅".to_string()
                } else {
                    format!("{}q/{}g", s.circuit.num_qubits(), s.circuit.gate_count())
                }
            })
            .collect();
        // Pair halves must sit in strictly ascending segments.
        let separated = obf
            .insertion()
            .pairs
            .iter()
            .all(|p| split.assignment[p.inverse_index] < split.assignment[p.forward_index]);
        let restored = split.recombine()?;
        let exact = (0..1usize << circuit.num_qubits())
            .all(|x| classical_eval(&restored, x).expect("classical") == bench.eval(x));
        println!(
            "k={k}: segments [{}]  pairs separated: {separated}  restoration exact: {exact}",
            widths.join(", ")
        );
        assert!(separated && exact);
    }

    println!("\neach compiler sees one segment; no subset short of all k of them");
    println!("holds a cancellable R/R⁻¹ pair or the complete design.");
    Ok(())
}
