//! Quickstart: protect a circuit with TetrisLock in five steps.
//!
//! ```text
//! cargo run -p examples --bin quickstart
//! ```

use qcir::{display, Circuit};
use qsim::unitary::equivalent_up_to_phase;
use tetrislock::recombine::recombine;
use tetrislock::Obfuscator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The secret design: a 4-qubit reversible full adder.
    let bench = revlib::adder_1bit();
    let circuit: &Circuit = bench.circuit();
    println!("== original circuit (the IP to protect) ==");
    print!("{}", display::render(circuit));
    println!(
        "depth {}, {} gates\n",
        circuit.depth(),
        circuit.gate_count()
    );

    // 2. Obfuscate: random gates + their inverses land in empty slots.
    let obf = Obfuscator::new().with_seed(42).obfuscate(circuit);
    println!(
        "== obfuscated (R⁻¹RC): {} gates inserted, depth change {} ==",
        obf.insertion().gate_overhead(),
        obf.depth_increase()
    );
    print!("{}", display::render(obf.obfuscated()));
    println!();

    // 3. Split along an interlocking pattern.
    let split = obf.split(7);
    println!(
        "== split: left segment {} qubits / {} gates, right segment {} qubits / {} gates ==",
        split.left.circuit.num_qubits(),
        split.left.circuit.gate_count(),
        split.right.circuit.num_qubits(),
        split.right.circuit.gate_count(),
    );
    println!("left (goes to compiler A):");
    print!("{}", display::render(&split.left.circuit));
    println!("right (goes to compiler B):");
    print!("{}", display::render(&split.right.circuit));
    println!("qubit counts differ: {}\n", split.has_mismatched_qubits());

    // 4. Each compiler sees only its segment... (see the
    //    `untrusted_compiler_flow` example for actual compilation).

    // 5. De-obfuscate: recombine and verify the function is restored.
    let restored = recombine(&split)?;
    let same = equivalent_up_to_phase(circuit, &restored, 1e-9)?;
    println!("== recombined ==");
    println!("functionally identical to the original: {same}");
    assert!(same);
    Ok(())
}
