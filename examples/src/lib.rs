//! Example host crate; binaries live in `src/bin/`.
